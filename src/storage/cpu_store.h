// Per-machine CPU-memory checkpoint store.
//
// Implements GEMINI's in-memory tier: each machine hosts checkpoint replicas
// for itself and for the group peers assigned by the placement strategy.
// Per the paper's implementation (Section 7.1), each hosted owner has two
// buffers — one holding the last *completed* checkpoint and one receiving
// the *ongoing* checkpoint — so a failure mid-checkpoint always leaves a
// complete checkpoint behind. Committing swaps the buffers.
//
// Memory is accounted against the host Machine's CPU memory; hosting is
// rejected when 2x the replica size does not fit.
#ifndef SRC_STORAGE_CPU_STORE_H_
#define SRC_STORAGE_CPU_STORE_H_

#include <map>
#include <optional>

#include "src/cluster/machine.h"
#include "src/common/status.h"
#include "src/storage/checkpoint.h"
#include "src/storage/checkpoint_store.h"
#include "src/storage/delta.h"

namespace gemini {

class Counter;
class Gauge;
class MetricsRegistry;

class CpuCheckpointStore : public CheckpointStore {
 public:
  explicit CpuCheckpointStore(Machine& machine) : machine_(&machine) {}

  std::string_view tier_name() const override { return "cpu_memory"; }

  // Optional observability sink ("cpu_store.*" counters); survives
  // ResetForMachine (the registry outlives machine incarnations). Counter
  // handles are resolved here, once, per the hot-path metric convention
  // (src/obs/metrics.h).
  void set_metrics(MetricsRegistry* metrics);

  // Called when the machine is swapped for a new incarnation: all contents
  // are lost with the old machine's DRAM.
  void ResetForMachine(Machine& machine);

  // Reserves the double buffer for checkpoints owned by `owner_rank` of the
  // given size. Idempotent for equal sizes.
  Status HostOwner(int owner_rank, Bytes replica_bytes);
  // Releases the double buffer (placement change after recovery).
  void DropOwner(int owner_rank);
  bool Hosts(int owner_rank) const { return slots_.contains(owner_rank); }

  // Write path: Begin marks the ongoing buffer as receiving `iteration`;
  // AppendChunk accumulates arrived bytes; Commit requires all bytes present
  // and atomically publishes the checkpoint. Abort drops a partial write.
  Status BeginWrite(int owner_rank, int64_t iteration);
  Status AppendChunk(int owner_rank, Bytes chunk_bytes);
  Status CommitWrite(Checkpoint checkpoint);
  void AbortWrite(int owner_rank);

  // Convenience for paths where arrival is not chunk-timed (e.g. local
  // GPU->CPU copies whose timing is handled by the caller).
  Status WriteComplete(Checkpoint checkpoint);

  // Incremental mode. Once configured, every full commit seals a new redo
  // log base for its owner, WriteDelta appends epoch-sealed deltas on top,
  // and the read path (Latest / LatestVerified / LatestIteration)
  // materializes base+chain transparently — callers never see the chain.
  // The chain is folded into a new base when `config` caps are exceeded.
  void ConfigureRedoLog(const RedoLogConfig& config);
  bool incremental() const { return log_config_.has_value(); }

  // Appends one delta to the owner's chain. The delta must extend the chain
  // head exactly (epoch sealing); a stale or gapped delta is rejected and
  // the caller should fall back to a full write.
  Status WriteDelta(DeltaCheckpoint delta);

  // Chain head iteration a new delta must base on (-1 when no base); equals
  // LatestIteration in incremental mode but never materializes.
  int64_t ChainHeadIteration(int owner_rank) const;
  size_t ChainLength(int owner_rank) const;

  // Fault injection: flips one payload bit inside the owner's chain at
  // `chain_index` (mid-chain bit-rot; the per-chunk CRC gate catches it at
  // materialization and the replica is treated as lost).
  Status CorruptChainDelta(int owner_rank, size_t chain_index, size_t bit_index);

  // Latest completed checkpoint for an owner, if any.
  std::optional<Checkpoint> Latest(int owner_rank) const;
  // Like Latest(), but re-checks the payload CRC before serving: a replica
  // whose bytes no longer match the digest recorded at capture time is
  // treated as absent (and counted under "cpu_store.crc_failures"). Every
  // recovery read goes through this so a torn or bit-flipped replica can
  // never be restored silently.
  std::optional<Checkpoint> LatestVerified(int owner_rank) const override;
  // Iteration of the latest completed checkpoint, or -1.
  int64_t LatestIteration(int owner_rank) const override;

  // Fault injection: flips one payload bit of the owner's completed replica
  // (the checkpoint bit-rot the CRC reads exist to catch).
  Status CorruptLatest(int owner_rank, size_t bit_index) override;

  Bytes reserved_bytes() const { return reserved_; }

 private:
  struct Slot {
    Bytes replica_bytes = 0;
    std::optional<Checkpoint> completed;
    // Epoch-sealed delta chain on top of `completed` (incremental mode).
    std::optional<RedoLog> log;
    // Ongoing write state.
    bool writing = false;
    int64_t writing_iteration = -1;
    Bytes received = 0;
  };

  // Serves the owner's newest state: the materialized chain in incremental
  // mode (nullopt on a corrupt link when `count_failures`), else the
  // completed full checkpoint.
  std::optional<Checkpoint> LatestImpl(int owner_rank, bool count_failures) const;

  Machine* machine_;
  MetricsRegistry* metrics_ = nullptr;
  std::optional<RedoLogConfig> log_config_;
  // Hot-path metric handles (resolved once in set_metrics).
  Counter* commits_counter_ = nullptr;
  Counter* bytes_committed_counter_ = nullptr;
  Counter* aborts_counter_ = nullptr;
  Counter* crc_failures_counter_ = nullptr;
  Counter* corruptions_counter_ = nullptr;
  Counter* delta_commits_counter_ = nullptr;
  Counter* delta_bytes_saved_counter_ = nullptr;
  Counter* compaction_folds_counter_ = nullptr;
  Counter* compaction_bytes_folded_counter_ = nullptr;
  Gauge* chain_length_gauge_ = nullptr;
  std::map<int, Slot> slots_;
  Bytes reserved_ = 0;
};

}  // namespace gemini

#endif  // SRC_STORAGE_CPU_STORE_H_
