// Machines and GPUs.
//
// A Machine models one GPU instance: a rank in the training job, an array of
// GPUs with memory accounting (used to detect the OOM failure mode of naive
// checkpoint interleaving, Figure 5b/16), CPU memory accounting for the
// checkpoint store, and a health state driven by the failure injector.
//
// Rank vs machine identity: the training job addresses positions by `rank`
// (0..N-1). A hardware replacement installs a fresh machine (new incarnation
// number) at the same rank, mirroring how Machine 2' replaces Machine 2 in
// the paper's Figure 6c.
#ifndef SRC_CLUSTER_MACHINE_H_
#define SRC_CLUSTER_MACHINE_H_

#include <string>
#include <vector>

#include "src/cluster/instance_spec.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace gemini {

enum class MachineHealth {
  kHealthy,
  // Training process crashed but hardware is fine (software failure).
  kProcessDown,
  // Hardware failure: machine is unreachable and its memory contents lost.
  kDead,
};

std::string_view MachineHealthName(MachineHealth health);

// One GPU: tracks memory so naive schemes that stage an entire checkpoint in
// GPU memory visibly OOM.
class Gpu {
 public:
  explicit Gpu(Bytes memory) : capacity_(memory) {}

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes free() const { return capacity_ - used_; }

  // Reserves `bytes`; fails with kResourceExhausted on OOM.
  Status Allocate(Bytes bytes);
  void Free(Bytes bytes);

 private:
  Bytes capacity_;
  Bytes used_ = 0;
};

class Machine {
 public:
  Machine(int rank, int incarnation, const InstanceSpec& spec);

  int rank() const { return rank_; }
  // Distinguishes successive machines occupying the same rank.
  int incarnation() const { return incarnation_; }
  const InstanceSpec& spec() const { return *spec_; }

  MachineHealth health() const { return health_; }
  bool alive() const { return health_ != MachineHealth::kDead; }
  bool process_running() const { return health_ == MachineHealth::kHealthy; }
  void set_health(MachineHealth health) { health_ = health; }

  int num_gpus() const { return static_cast<int>(gpus_.size()); }
  Gpu& gpu(int index) { return gpus_.at(static_cast<size_t>(index)); }
  const Gpu& gpu(int index) const { return gpus_.at(static_cast<size_t>(index)); }

  // Smallest free GPU memory across the machine's GPUs: a buffer reservation
  // must fit on every GPU since checkpoints are sharded across all of them.
  Bytes min_free_gpu_memory() const;

  // Reserves `bytes` on every GPU (e.g. the checkpoint communication buffer).
  // On failure nothing is left allocated.
  Status AllocateOnAllGpus(Bytes bytes);
  void FreeOnAllGpus(Bytes bytes);

  // CPU (host) memory accounting for checkpoint storage.
  Bytes cpu_memory_capacity() const { return spec_->cpu_memory; }
  Bytes cpu_memory_used() const { return cpu_used_; }
  Bytes cpu_memory_free() const { return spec_->cpu_memory - cpu_used_; }
  Status AllocateCpuMemory(Bytes bytes);
  void FreeCpuMemory(Bytes bytes);

  // "rank3" or "rank3'" (primes mark replacement incarnations, as in Fig 6c).
  std::string DebugName() const;

 private:
  int rank_;
  int incarnation_;
  const InstanceSpec* spec_;
  MachineHealth health_ = MachineHealth::kHealthy;
  std::vector<Gpu> gpus_;
  Bytes cpu_used_ = 0;
};

}  // namespace gemini

#endif  // SRC_CLUSTER_MACHINE_H_
