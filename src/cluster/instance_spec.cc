#include "src/cluster/instance_spec.h"

namespace gemini {
namespace {

std::vector<InstanceSpec> BuildCatalog() {
  // Memory columns reproduce paper Table 1. Bandwidths are the published
  // figures for each instance family; effective FLOP/s are calibrated so the
  // simulated iteration times of the Table 2 workloads land near the paper's
  // measurements (see src/training/calibration.h).
  std::vector<InstanceSpec> catalog;
  catalog.push_back(InstanceSpec{
      .name = "p3dn.24xlarge",
      .cloud = "AWS",
      .gpu_model = "V100",
      .num_gpus = 8,
      .gpu_memory_per_gpu = GiB(32),
      .cpu_memory = GiB(768),
      .network_bandwidth = GbpsToBytesPerSecond(100),
      .gpu_cpu_copy_bandwidth = GbpsToBytesPerSecond(100),
      .effective_flops_per_gpu = 40e12,
      .collective_efficiency = 0.5,
  });
  catalog.push_back(InstanceSpec{
      .name = "p4d.24xlarge",
      .cloud = "AWS",
      .gpu_model = "A100",
      .num_gpus = 8,
      .gpu_memory_per_gpu = GiB(40),
      .cpu_memory = GiB(1152),
      .network_bandwidth = GbpsToBytesPerSecond(400),
      .gpu_cpu_copy_bandwidth = GbpsToBytesPerSecond(400),
      .effective_flops_per_gpu = 56e12,
      .collective_efficiency = 0.23,
  });
  catalog.push_back(InstanceSpec{
      .name = "ND40rs_v2",
      .cloud = "Azure",
      .gpu_model = "V100",
      .num_gpus = 8,
      .gpu_memory_per_gpu = GiB(32),
      .cpu_memory = GiB(672),
      .network_bandwidth = GbpsToBytesPerSecond(100),
      .gpu_cpu_copy_bandwidth = GbpsToBytesPerSecond(128),
      .effective_flops_per_gpu = 38e12,
  });
  catalog.push_back(InstanceSpec{
      .name = "ND96asr_v4",
      .cloud = "Azure",
      .gpu_model = "A100",
      .num_gpus = 8,
      .gpu_memory_per_gpu = GiB(40),
      .cpu_memory = GiB(900),
      .network_bandwidth = GbpsToBytesPerSecond(200),
      .gpu_cpu_copy_bandwidth = GbpsToBytesPerSecond(256),
      .effective_flops_per_gpu = 56e12,
  });
  catalog.push_back(InstanceSpec{
      .name = "n1-8-v100",
      .cloud = "GCP",
      .gpu_model = "V100",
      .num_gpus = 8,
      .gpu_memory_per_gpu = GiB(32),
      .cpu_memory = GiB(624),
      .network_bandwidth = GbpsToBytesPerSecond(32),
      .gpu_cpu_copy_bandwidth = GbpsToBytesPerSecond(100),
      .effective_flops_per_gpu = 38e12,
  });
  catalog.push_back(InstanceSpec{
      .name = "a2-highgpu-8g",
      .cloud = "GCP",
      .gpu_model = "A100",
      .num_gpus = 8,
      .gpu_memory_per_gpu = GiB(40),
      .cpu_memory = GiB(640),
      .network_bandwidth = GbpsToBytesPerSecond(100),
      .gpu_cpu_copy_bandwidth = GbpsToBytesPerSecond(256),
      .effective_flops_per_gpu = 56e12,
  });
  catalog.push_back(InstanceSpec{
      .name = "DGX A100",
      .cloud = "NVIDIA",
      .gpu_model = "A100",
      .num_gpus = 8,
      .gpu_memory_per_gpu = GiB(80),
      .cpu_memory = GiB(2048),
      .network_bandwidth = GbpsToBytesPerSecond(200),
      .gpu_cpu_copy_bandwidth = GbpsToBytesPerSecond(400),
      .effective_flops_per_gpu = 56e12,
  });
  return catalog;
}

}  // namespace

const std::vector<InstanceSpec>& InstanceCatalog() {
  static const std::vector<InstanceSpec> catalog = BuildCatalog();
  return catalog;
}

const InstanceSpec* FindInstanceSpec(const std::string& name) {
  for (const auto& spec : InstanceCatalog()) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

const InstanceSpec& P4d24xlarge() { return *FindInstanceSpec("p4d.24xlarge"); }

const InstanceSpec& Trn1_32xlarge() {
  static const InstanceSpec spec{
      .name = "trn1.32xlarge",
      .cloud = "AWS",
      .gpu_model = "Trainium",
      .num_gpus = 16,
      .gpu_memory_per_gpu = GiB(32),
      .cpu_memory = GiB(512),
      .network_bandwidth = GbpsToBytesPerSecond(800),
      .gpu_cpu_copy_bandwidth = GbpsToBytesPerSecond(800),
      .effective_flops_per_gpu = 48e12,
      .collective_efficiency = 0.25,
  };
  return spec;
}

const InstanceSpec& P3dn24xlarge() { return *FindInstanceSpec("p3dn.24xlarge"); }

}  // namespace gemini
