// Cluster: the set of machines participating in training plus their shared
// fabric and per-machine GPU<->CPU copy engines.
#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/cluster/fabric.h"
#include "src/cluster/instance_spec.h"
#include "src/cluster/machine.h"
#include "src/sim/simulator.h"

namespace gemini {

// GPU->CPU (and CPU->GPU) copy engine, one per machine. Same busy-until FIFO
// discipline as a NIC side: at most one staged copy at a time, which is why
// an un-pipelined receiver stalls the sender (Figure 5c).
class PcieEngine {
 public:
  PcieEngine(Simulator& sim, int num_ranks, std::vector<BytesPerSecond> bandwidth_per_rank);

  using DoneCallback = std::function<void(Status)>;

  // Queues a copy on `rank`; returns scheduled completion time.
  TimeNs Copy(int rank, Bytes bytes, DoneCallback done);

  TimeNs EarliestStart(int rank) const;
  TimeNs BusyTotal(int rank) const;
  BytesPerSecond bandwidth(int rank) const;

 private:
  struct Engine {
    BytesPerSecond bandwidth = 0;
    TimeNs free_at = 0;
    TimeNs busy_total = 0;
  };

  Simulator& sim_;
  std::vector<Engine> engines_;
};

class Cluster {
 public:
  // Builds `num_machines` machines of the given instance type sharing one
  // fabric. The fabric's liveness check is wired to machine health.
  Cluster(Simulator& sim, int num_machines, const InstanceSpec& spec, FabricConfig fabric_config);

  int size() const { return static_cast<int>(machines_.size()); }
  const InstanceSpec& spec() const { return *spec_; }
  Simulator& sim() { return sim_; }

  Machine& machine(int rank) { return *machines_.at(static_cast<size_t>(rank)); }
  const Machine& machine(int rank) const { return *machines_.at(static_cast<size_t>(rank)); }

  Fabric& fabric() { return fabric_; }
  PcieEngine& pcie() { return pcie_; }

  // Installs a fresh machine (next incarnation) at `rank`, as the cloud
  // operator does when replacing failed hardware.
  Machine& ReplaceMachine(int rank);

  // Ranks currently in each health state.
  std::vector<int> AliveRanks() const;
  std::vector<int> DeadRanks() const;
  int num_alive() const;

 private:
  Simulator& sim_;
  const InstanceSpec* spec_;
  std::vector<std::unique_ptr<Machine>> machines_;
  Fabric fabric_;
  PcieEngine pcie_;
};

}  // namespace gemini

#endif  // SRC_CLUSTER_CLUSTER_H_
