#include "src/cluster/machine.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace gemini {

std::string_view MachineHealthName(MachineHealth health) {
  switch (health) {
    case MachineHealth::kHealthy:
      return "healthy";
    case MachineHealth::kProcessDown:
      return "process_down";
    case MachineHealth::kDead:
      return "dead";
  }
  return "unknown";
}

Status Gpu::Allocate(Bytes bytes) {
  assert(bytes >= 0);
  if (used_ + bytes > capacity_) {
    return ResourceExhaustedError("GPU out of memory: requested " + FormatBytes(bytes) +
                                  ", free " + FormatBytes(free()));
  }
  used_ += bytes;
  return Status::Ok();
}

void Gpu::Free(Bytes bytes) {
  assert(bytes >= 0);
  assert(bytes <= used_);
  used_ -= bytes;
}

Machine::Machine(int rank, int incarnation, const InstanceSpec& spec)
    : rank_(rank), incarnation_(incarnation), spec_(&spec) {
  gpus_.reserve(static_cast<size_t>(spec.num_gpus));
  for (int i = 0; i < spec.num_gpus; ++i) {
    gpus_.emplace_back(spec.gpu_memory_per_gpu);
  }
}

Bytes Machine::min_free_gpu_memory() const {
  Bytes min_free = gpus_.empty() ? 0 : gpus_.front().free();
  for (const auto& gpu : gpus_) {
    min_free = std::min(min_free, gpu.free());
  }
  return min_free;
}

Status Machine::AllocateOnAllGpus(Bytes bytes) {
  for (size_t i = 0; i < gpus_.size(); ++i) {
    const Status status = gpus_[i].Allocate(bytes);
    if (!status.ok()) {
      for (size_t j = 0; j < i; ++j) {
        gpus_[j].Free(bytes);
      }
      return status;
    }
  }
  return Status::Ok();
}

void Machine::FreeOnAllGpus(Bytes bytes) {
  for (auto& gpu : gpus_) {
    gpu.Free(bytes);
  }
}

Status Machine::AllocateCpuMemory(Bytes bytes) {
  assert(bytes >= 0);
  if (cpu_used_ + bytes > spec_->cpu_memory) {
    return ResourceExhaustedError("CPU memory exhausted on " + DebugName() + ": requested " +
                                  FormatBytes(bytes) + ", free " + FormatBytes(cpu_memory_free()));
  }
  cpu_used_ += bytes;
  return Status::Ok();
}

void Machine::FreeCpuMemory(Bytes bytes) {
  assert(bytes >= 0);
  assert(bytes <= cpu_used_);
  cpu_used_ -= bytes;
}

std::string Machine::DebugName() const {
  std::string name = "rank" + std::to_string(rank_);
  name.append(static_cast<size_t>(incarnation_), '\'');
  return name;
}

}  // namespace gemini
