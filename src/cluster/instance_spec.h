// GPU instance catalog (paper Table 1) plus the performance parameters the
// substrate needs: NIC bandwidth, GPU<->CPU copy bandwidth, and a calibrated
// effective per-GPU training throughput.
#ifndef SRC_CLUSTER_INSTANCE_SPEC_H_
#define SRC_CLUSTER_INSTANCE_SPEC_H_

#include <string>
#include <vector>

#include "src/common/units.h"

namespace gemini {

struct InstanceSpec {
  std::string name;
  std::string cloud;
  std::string gpu_model;
  int num_gpus = 0;
  Bytes gpu_memory_per_gpu = 0;
  Bytes cpu_memory = 0;
  // Inter-machine NIC bandwidth (e.g. 400 Gb/s EFA on p4d.24xlarge).
  BytesPerSecond network_bandwidth = 0;
  // Aggregate GPU<->CPU copy bandwidth per machine. The paper measured both
  // the EFA and the PCIe copy path at ~400 Gb/s on p4d.24xlarge (Section 5.2
  // footnote 2), which is exactly why pipelining is required.
  BytesPerSecond gpu_cpu_copy_bandwidth = 0;
  // Calibrated effective training throughput per GPU (FLOP/s), i.e. peak
  // times achieved MFU for ZeRO-3 at the paper's scale. See
  // src/training/calibration.h for how the values were fit.
  double effective_flops_per_gpu = 0;
  // Fraction of NIC line rate that synchronization-bound training collectives
  // achieve (checkpoint point-to-point streams run at full rate). Calibrated
  // per instance family; see src/training/calibration.h.
  double collective_efficiency = 0.3;

  Bytes total_gpu_memory() const { return gpu_memory_per_gpu * num_gpus; }
};

// The two instance types the paper evaluates on.
const InstanceSpec& P4d24xlarge();   // 8x A100 40GB, 1152 GB CPU, 400 Gb/s EFA
const InstanceSpec& P3dn24xlarge();  // 8x V100 32GB,  768 GB CPU, 100 Gb/s EFA

// AWS Trainium (trn1.32xlarge) — the accelerator the paper names as future
// work (Section 9). Not part of the paper's Table 1; `num_gpus` counts
// Trainium chips. Its CPU:accelerator memory ratio is only 1:1, so fewer
// in-memory replicas fit per host than on the GPU instances — the trade-off
// the extension tests quantify.
const InstanceSpec& Trn1_32xlarge();

// Full Table 1 catalog (AWS, Azure, GCP, NVIDIA DGX) for the table bench.
const std::vector<InstanceSpec>& InstanceCatalog();

// Looks up a catalog entry by name; returns nullptr when absent.
const InstanceSpec* FindInstanceSpec(const std::string& name);

}  // namespace gemini

#endif  // SRC_CLUSTER_INSTANCE_SPEC_H_
