#include "src/cluster/cluster.h"

#include <algorithm>
#include <cassert>

namespace gemini {

PcieEngine::PcieEngine(Simulator& sim, int num_ranks,
                       std::vector<BytesPerSecond> bandwidth_per_rank)
    : sim_(sim), engines_(static_cast<size_t>(num_ranks)) {
  assert(static_cast<int>(bandwidth_per_rank.size()) == num_ranks);
  for (int i = 0; i < num_ranks; ++i) {
    engines_[static_cast<size_t>(i)].bandwidth = bandwidth_per_rank[static_cast<size_t>(i)];
    assert(engines_[static_cast<size_t>(i)].bandwidth > 0);
  }
}

TimeNs PcieEngine::Copy(int rank, Bytes bytes, DoneCallback done) {
  Engine& engine = engines_.at(static_cast<size_t>(rank));
  const TimeNs start = std::max(sim_.now(), engine.free_at);
  const TimeNs duration = TransferTime(bytes, engine.bandwidth);
  const TimeNs end = start + duration;
  engine.free_at = end;
  engine.busy_total += duration;
  sim_.ScheduleAt(end, [done = std::move(done)] { done(Status::Ok()); });
  return end;
}

TimeNs PcieEngine::EarliestStart(int rank) const {
  return std::max(sim_.now(), engines_.at(static_cast<size_t>(rank)).free_at);
}

TimeNs PcieEngine::BusyTotal(int rank) const {
  return engines_.at(static_cast<size_t>(rank)).busy_total;
}

BytesPerSecond PcieEngine::bandwidth(int rank) const {
  return engines_.at(static_cast<size_t>(rank)).bandwidth;
}

namespace {

std::vector<BytesPerSecond> UniformCopyBandwidth(int num_machines, const InstanceSpec& spec) {
  return std::vector<BytesPerSecond>(static_cast<size_t>(num_machines),
                                     spec.gpu_cpu_copy_bandwidth);
}

}  // namespace

Cluster::Cluster(Simulator& sim, int num_machines, const InstanceSpec& spec,
                 FabricConfig fabric_config)
    : sim_(sim),
      spec_(&spec),
      fabric_(sim, num_machines, fabric_config),
      pcie_(sim, num_machines, UniformCopyBandwidth(num_machines, spec)) {
  assert(num_machines > 0);
  machines_.reserve(static_cast<size_t>(num_machines));
  for (int rank = 0; rank < num_machines; ++rank) {
    machines_.push_back(std::make_unique<Machine>(rank, /*incarnation=*/0, spec));
  }
  fabric_.set_liveness_check([this](int rank) { return machine(rank).alive(); });
}

Machine& Cluster::ReplaceMachine(int rank) {
  auto& slot = machines_.at(static_cast<size_t>(rank));
  const int incarnation = slot->incarnation() + 1;
  slot = std::make_unique<Machine>(rank, incarnation, *spec_);
  return *slot;
}

std::vector<int> Cluster::AliveRanks() const {
  std::vector<int> ranks;
  for (int i = 0; i < size(); ++i) {
    if (machine(i).alive()) {
      ranks.push_back(i);
    }
  }
  return ranks;
}

std::vector<int> Cluster::DeadRanks() const {
  std::vector<int> ranks;
  for (int i = 0; i < size(); ++i) {
    if (!machine(i).alive()) {
      ranks.push_back(i);
    }
  }
  return ranks;
}

int Cluster::num_alive() const { return static_cast<int>(AliveRanks().size()); }

}  // namespace gemini
