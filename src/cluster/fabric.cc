#include "src/cluster/fabric.h"

#include <algorithm>
#include <cassert>

namespace gemini {

Fabric::Fabric(Simulator& sim, int num_ranks, FabricConfig config)
    : sim_(sim), config_(config), nics_(static_cast<size_t>(num_ranks)) {
  assert(num_ranks > 0);
  assert(config_.link_bandwidth > 0);
  alive_ = [](int) { return true; };
}

void Fabric::set_liveness_check(std::function<bool(int rank)> alive) {
  assert(alive);
  alive_ = std::move(alive);
}

void Fabric::set_partition_check(std::function<bool(int src, int dst)> connected) {
  partition_ = std::move(connected);
}

TimeNs Fabric::Transfer(int src_rank, int dst_rank, Bytes bytes, const TransferOptions& options,
                        DoneCallback done) {
  assert(src_rank >= 0 && src_rank < num_ranks());
  assert(dst_rank >= 0 && dst_rank < num_ranks());
  assert(src_rank != dst_rank && "use Local() for intra-machine staging");
  assert(bytes >= 0);
  assert(options.bandwidth_efficiency > 0 && options.bandwidth_efficiency <= 1.0);

  Nic& src = nics_[static_cast<size_t>(src_rank)];
  Nic& dst = nics_[static_cast<size_t>(dst_rank)];
  const TimeNs start = std::max({sim_.now(), src.tx_free_at, dst.rx_free_at});
  const TimeNs duration =
      config_.alpha + TransferTime(bytes, config_.link_bandwidth * options.bandwidth_efficiency);
  const TimeNs end = start + duration;
  src.tx_free_at = end;
  dst.rx_free_at = end;
  src.tx_busy_total += duration;
  dst.rx_busy_total += duration;

  sim_.ScheduleAt(end, [this, src_rank, dst_rank, done = std::move(done)] {
    if (!alive_(src_rank) || !alive_(dst_rank)) {
      done(UnavailableError("endpoint failed during transfer"));
      return;
    }
    if (!Connected(src_rank, dst_rank)) {
      done(UnavailableError("network partition between endpoints"));
      return;
    }
    done(Status::Ok());
  });
  return end;
}

void Fabric::Local(TimeNs duration, DoneCallback done) {
  assert(duration >= 0);
  sim_.ScheduleAfter(duration, [done = std::move(done)] { done(Status::Ok()); });
}

void Fabric::SendControl(int src_rank, int dst_rank, std::function<void()> deliver) {
  assert(src_rank >= 0 && src_rank < num_ranks());
  assert(dst_rank >= 0 && dst_rank < num_ranks());
  // A dead source cannot send; a dead destination silently drops the message
  // (checked at delivery time so failures mid-flight are respected).
  if (!alive_(src_rank)) {
    return;
  }
  sim_.ScheduleAfter(config_.control_delay,
                     [this, src_rank, dst_rank, deliver = std::move(deliver)] {
    if (!alive_(dst_rank) || !Connected(src_rank, dst_rank)) {
      return;
    }
    deliver();
  });
}

TimeNs Fabric::EarliestStart(int src_rank, int dst_rank) const {
  const Nic& src = nics_.at(static_cast<size_t>(src_rank));
  const Nic& dst = nics_.at(static_cast<size_t>(dst_rank));
  return std::max({sim_.now(), src.tx_free_at, dst.rx_free_at});
}

TimeNs Fabric::TxBusyTotal(int rank) const {
  return nics_.at(static_cast<size_t>(rank)).tx_busy_total;
}

TimeNs Fabric::RxBusyTotal(int rank) const {
  return nics_.at(static_cast<size_t>(rank)).rx_busy_total;
}

}  // namespace gemini
