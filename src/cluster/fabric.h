// Inter-machine network fabric.
//
// Models the training cluster's NIC-to-NIC network (EFA in the paper) with
// the classic alpha-beta cost: a transfer of s bytes takes alpha + s/B. Each
// rank has one full-duplex NIC; a transfer occupies the sender's TX side and
// the receiver's RX side FIFO, so checkpoint chunks and training collectives
// contend for exactly the same resource — the source of the interference
// GEMINI's scheduler must avoid (Section 5).
//
// Two service classes share the NIC:
//  * Bulk transfers (Transfer): bandwidth-occupying, FIFO per NIC side.
//  * Control messages (SendControl): tiny RPCs (key-value store traffic,
//    agent notifications) delivered after a propagation delay without
//    consuming modeled bandwidth.
#ifndef SRC_CLUSTER_FABRIC_H_
#define SRC_CLUSTER_FABRIC_H_

#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace gemini {

struct FabricConfig {
  BytesPerSecond link_bandwidth = GbpsToBytesPerSecond(400);
  // Per-transfer startup cost (the alpha in f(s) = alpha + s/B).
  TimeNs alpha = Micros(100);
  // One-way propagation delay for control messages.
  TimeNs control_delay = Micros(50);
};

class Fabric {
 public:
  struct TransferOptions {
    // Fraction of line rate this transfer achieves. Training collectives are
    // synchronization-bound and achieve well below line rate; checkpoint
    // point-to-point streams run at full rate. Calibrated in
    // src/training/calibration.h.
    double bandwidth_efficiency = 1.0;
  };

  using DoneCallback = std::function<void(Status)>;

  Fabric(Simulator& sim, int num_ranks, FabricConfig config);

  int num_ranks() const { return static_cast<int>(nics_.size()); }
  const FabricConfig& config() const { return config_; }

  // Predicate consulted at transfer completion; a dead endpoint fails the
  // transfer with kUnavailable. Defaults to "always alive".
  void set_liveness_check(std::function<bool(int rank)> alive);

  // Network partition predicate: when set, a pair (src, dst) for which it
  // returns false exchanges no traffic — control messages are dropped and
  // bulk transfers fail at completion time. Pass nullptr to heal.
  void set_partition_check(std::function<bool(int src, int dst)> connected);

  // Queues a bulk transfer src->dst. Start = max(now, src TX free, dst RX
  // free); completion = start + alpha + bytes/(B*efficiency). `done` runs at
  // completion time. Returns the scheduled completion time.
  TimeNs Transfer(int src_rank, int dst_rank, Bytes bytes, const TransferOptions& options,
                  DoneCallback done);

  // Local loopback "transfer" used by intra-machine staging: occupies no NIC
  // and completes after `duration`.
  void Local(TimeNs duration, DoneCallback done);

  // Delivers a control message (no bandwidth use) after control_delay.
  void SendControl(int src_rank, int dst_rank, std::function<void()> deliver);

  // Earliest time a bulk transfer src->dst could begin.
  TimeNs EarliestStart(int src_rank, int dst_rank) const;

  // Cumulative time the rank's TX side has been (or is scheduled to be) busy.
  TimeNs TxBusyTotal(int rank) const;
  TimeNs RxBusyTotal(int rank) const;

 private:
  struct Nic {
    TimeNs tx_free_at = 0;
    TimeNs rx_free_at = 0;
    TimeNs tx_busy_total = 0;
    TimeNs rx_busy_total = 0;
  };

  bool Connected(int src, int dst) const {
    return !partition_ || partition_(src, dst);
  }

  Simulator& sim_;
  FabricConfig config_;
  std::vector<Nic> nics_;
  std::function<bool(int)> alive_;
  std::function<bool(int, int)> partition_;
};

}  // namespace gemini

#endif  // SRC_CLUSTER_FABRIC_H_
