#include "src/policy/recompute_policy.h"

namespace gemini {

IterationPlan RecomputePolicy::PlanIteration(PolicyHost& host, int64_t iteration,
                                             bool has_staged_block) {
  (void)iteration;
  (void)has_staged_block;
  // Nothing is captured, staged, or committed: pure baseline iterations.
  IterationPlan plan;
  plan.iteration_duration = host.execution().baseline_iteration_time;
  return plan;
}

TimeNs RecomputePolicy::PersistentInterval(const PolicyHost& host) const {
  (void)host;
  // Checkpoint-free by definition; <= 0 disables the persistent cadence.
  return 0;
}

TimeNs RecomputePolicy::RecoverySerializationTime(const PolicyHost& host) const {
  (void)host;
  return 0;
}

RecoveryPlan RecomputePolicy::BuildRecoveryPlan(const PolicyHost& host,
                                                const RecoverySituation& situation) const {
  (void)host;
  // Rebuild in place from peer redundancy; only a full-group loss (no peers
  // hold the needed redundancy) degrades to the persistent seed.
  RecoveryPlan plan;
  if (situation.peer_recoverable) {
    RecoveryStep recompute;
    recompute.kind = RecoveryStepKind::kRecomputeFromPeers;
    recompute.recompute_iterations = options_.recompute_iterations;
    plan.steps.push_back(recompute);
  }
  plan.steps.push_back({RecoveryStepKind::kFetchFromPersistent});
  return plan;
}

PolicyCostReport RecomputePolicy::CostReport(const PolicyHost& host) const {
  PolicyCostReport report;
  report.steady_state_overhead_fraction = 0.0;
  // Recompute moves no checkpoint bytes; its recovery bill is compute time.
  report.expected_recovery_fetch_time = static_cast<TimeNs>(
      options_.recompute_iterations *
      static_cast<double>(host.execution().baseline_iteration_time));
  report.expected_rollback_iterations = 0.0;
  return report;
}

}  // namespace gemini
