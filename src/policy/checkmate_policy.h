// Checkmate-style network gradient replication (PAPERS.md).
//
// Instead of checkpointing model states, every iteration's gradients are
// logged to peer machines, riding the backward pass's existing collective
// traffic — a near-zero steady-state tax. Recovery restores the latest
// persistent base checkpoint and deterministically replays the logged
// gradients forward to the failure iteration: no progress is ever rolled
// back, at the price of replay time proportional to the log length.
#ifndef SRC_POLICY_CHECKMATE_POLICY_H_
#define SRC_POLICY_CHECKMATE_POLICY_H_

#include "src/policy/protection_policy.h"

namespace gemini {

class CheckmatePolicy : public ProtectionPolicy {
 public:
  explicit CheckmatePolicy(CheckmateOptions options) : options_(options) {}

  PolicyKind kind() const override { return PolicyKind::kCheckmate; }
  std::string_view name() const override { return "checkmate"; }
  bool uses_cpu_checkpoints() const override { return false; }

  void Activate(PolicyHost& host) override;
  IterationPlan PlanIteration(PolicyHost& host, int64_t iteration,
                              bool has_staged_block) override;
  TimeNs PersistentInterval(const PolicyHost& host) const override;
  TimeNs RecoverySerializationTime(const PolicyHost& host) const override;
  RecoveryPlan BuildRecoveryPlan(const PolicyHost& host,
                                 const RecoverySituation& situation) const override;
  PolicyCostReport CostReport(const PolicyHost& host) const override;

  const CheckmateOptions& options() const { return options_; }

 private:
  CheckmateOptions options_;
  // Hot-path metric handles (resolved on Activate, per src/obs/metrics.h).
  Counter* gradient_bytes_counter_ = nullptr;
  Counter* logged_iterations_counter_ = nullptr;
};

}  // namespace gemini

#endif  // SRC_POLICY_CHECKMATE_POLICY_H_
