#include "src/policy/tiercheck_policy.h"

#include <algorithm>

#include "src/policy/cost_model.h"

namespace gemini {

IterationPlan TierCheckPolicy::PlanIteration(PolicyHost& host, int64_t iteration,
                                             bool has_staged_block) {
  (void)has_staged_block;
  // The CPU tier runs exactly GEMINI's block structure; the split is all in
  // the persistent cadence.
  const int interval = host.checkpoint_interval_iterations();
  IterationPlan plan;
  plan.stage_snapshot = iteration % interval == 0;
  plan.commit_staged = host.num_replicas() >= 1 && iteration % interval == interval - 1;
  plan.commit_delay =
      std::min(host.execution().checkpoint_done, host.execution().iteration_time);
  plan.iteration_duration = host.execution().iteration_time;
  return plan;
}

TimeNs TierCheckPolicy::PersistentInterval(const PolicyHost& host) const {
  // The requested cadence, stretched (never shrunk) until the serialization
  // stall it implies stays under the overhead budget.
  const TimeNs stall =
      SerializationStall(host.replica_bytes(), host.serialization_bandwidth());
  const TimeNs budgeted = BudgetedInterval(stall, options_.overhead_budget,
                                           options_.persistent_interval,
                                           host.execution().iteration_time);
  return std::max(options_.persistent_interval, budgeted);
}

TimeNs TierCheckPolicy::RecoverySerializationTime(const PolicyHost& host) const {
  return host.num_replicas() *
         TransferTime(host.replica_bytes(), host.serialization_bandwidth());
}

RecoveryPlan TierCheckPolicy::BuildRecoveryPlan(const PolicyHost& host,
                                                const RecoverySituation& situation) const {
  (void)host;
  // Same chains as GEMINI — the persistent fallback is simply much fresher.
  RecoveryPlan plan;
  if (situation.type == FailureType::kSoftware) {
    plan.steps.push_back({RecoveryStepKind::kRestoreFromLocalCpu});
  } else if (situation.peer_recoverable) {
    plan.steps.push_back({RecoveryStepKind::kFetchFromPeers});
  }
  plan.steps.push_back({RecoveryStepKind::kFetchFromPersistent});
  return plan;
}

PolicyCostReport TierCheckPolicy::CostReport(const PolicyHost& host) const {
  PolicyCostReport report;
  const TimeNs stall =
      SerializationStall(host.replica_bytes(), host.serialization_bandwidth());
  const TimeNs interval = PersistentInterval(host);
  // CPU-tier overhead (Algorithm 2) plus the amortized persistent stall.
  report.steady_state_overhead_fraction =
      host.execution().overhead_fraction +
      static_cast<double>(stall) / static_cast<double>(std::max<TimeNs>(1, interval));
  report.expected_recovery_fetch_time =
      TransferTime(host.replica_bytes(), host.network_bandwidth());
  report.expected_rollback_iterations =
      static_cast<double>(host.checkpoint_interval_iterations()) / 2.0;
  return report;
}

}  // namespace gemini
