#include "src/policy/checkmate_policy.h"

namespace gemini {

void CheckmatePolicy::Activate(PolicyHost& host) {
  ProtectionPolicy::Activate(host);
  gradient_bytes_counter_ = &host.metrics().counter("policy.checkmate.gradient_bytes");
  logged_iterations_counter_ = &host.metrics().counter("policy.checkmate.logged_iterations");
}

IterationPlan CheckmatePolicy::PlanIteration(PolicyHost& host, int64_t iteration,
                                             bool has_staged_block) {
  (void)iteration;
  (void)has_staged_block;
  // No CPU checkpoints: the iteration runs at the checkpoint-free baseline,
  // plus the small replication stall of shipping this iteration's gradients
  // to peers alongside the backward pass.
  IterationPlan plan;
  plan.iteration_duration = host.execution().baseline_iteration_time;
  plan.added_stall = static_cast<TimeNs>(
      options_.stall_fraction * static_cast<double>(plan.iteration_duration));
  const Bytes gradient_bytes = static_cast<Bytes>(
      options_.gradient_bytes_fraction * static_cast<double>(host.replica_bytes()));
  gradient_bytes_counter_->Increment(gradient_bytes);
  logged_iterations_counter_->Increment();
  return plan;
}

TimeNs CheckmatePolicy::PersistentInterval(const PolicyHost& host) const {
  // The persistent base bounds the gradient log the replay must traverse;
  // the default hours-scale cadence is kept.
  return host.default_persistent_interval();
}

TimeNs CheckmatePolicy::RecoverySerializationTime(const PolicyHost& host) const {
  (void)host;
  // No in-memory replicas to serialize before recovery starts.
  return 0;
}

RecoveryPlan CheckmatePolicy::BuildRecoveryPlan(const PolicyHost& host,
                                                const RecoverySituation& situation) const {
  (void)host;
  (void)situation;
  // Replay the logged gradients on top of the persistent base; if the log or
  // base is unusable, degrade to a plain persistent rollback.
  RecoveryPlan plan;
  RecoveryStep replay;
  replay.kind = RecoveryStepKind::kReplayLoggedGradients;
  replay.replay_cost_fraction = options_.replay_cost_fraction;
  plan.steps.push_back(replay);
  plan.steps.push_back({RecoveryStepKind::kFetchFromPersistent});
  return plan;
}

PolicyCostReport CheckmatePolicy::CostReport(const PolicyHost& host) const {
  PolicyCostReport report;
  report.steady_state_overhead_fraction = options_.stall_fraction;
  // Typical recovery fetches one persistent base shard set, then replays;
  // the fetch dominates the data movement.
  report.expected_recovery_fetch_time = TransferTime(
      host.replica_bytes() * host.num_machines(), host.persistent_bandwidth());
  // Replay lands exactly at the failure iteration: zero lost progress.
  report.expected_rollback_iterations = 0.0;
  return report;
}

}  // namespace gemini
