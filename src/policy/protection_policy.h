// Pluggable protection-policy engine (the ROADMAP's Chameleon direction).
//
// GEMINI's in-memory checkpointing is one point in the failure-recovery
// design space; Checkmate-style gradient replication, tiered CPU+persistent
// checkpointing, and recompute-from-peers occupy others. This seam makes the
// *strategy* pluggable while GeminiSystem keeps owning the *mechanisms*
// (event loop, replacement, retrieval cascades, resume bookkeeping):
//
//  * `ProtectionPolicy` decides per-iteration capture/commit, the persistent
//    cadence, the recovery serialization bill, and — per failure — an ordered
//    fallback chain of `RecoveryStep`s the host executes. It self-reports its
//    steady-state cost so selectors and benches compare policies uniformly.
//  * `PolicyHost` is the narrow view of GeminiSystem a policy programs
//    against (simulated clock, observability, schedule facts, and the
//    auditor-derived signals the online selector feeds on). Policies never
//    see concrete system types, so they cannot reach around the seam.
//
// The default `GeminiPolicy` reproduces the pre-refactor behavior decision
// for decision: same event order, same timing, byte-identical BENCH exports.
#ifndef SRC_POLICY_PROTECTION_POLICY_H_
#define SRC_POLICY_PROTECTION_POLICY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/agent/failure_injector.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/obs/run_tracer.h"
#include "src/schedule/executor.h"
#include "src/sim/simulator.h"

namespace gemini {

enum class PolicyKind {
  kGemini,     // In-memory CPU checkpoints every iteration (the paper).
  kTierCheck,  // CPU checkpoints + a much faster persistent cadence.
  kCheckmate,  // Per-iteration gradient replication; recovery replays the log.
  kRecompute,  // No checkpoints; recompute lost state from peer redundancy.
  kChameleon,  // Online selector switching between the four above.
};

std::string_view PolicyKindName(PolicyKind kind);

// What the policy wants done for one iteration, decided at iteration start.
struct IterationPlan {
  // Capture a consistent snapshot of every alive rank into the staging
  // buffers (the start of a checkpoint block).
  bool stage_snapshot = false;
  // Schedule the staged block's commit into the holders' CPU stores,
  // `commit_delay` after iteration start (the Algorithm-2 transmission time).
  bool commit_staged = false;
  TimeNs commit_delay = 0;
  // The iteration's duration under this policy, before any audit-attributed
  // interference inflation. GeminiPolicy returns the Algorithm-2 scheduled
  // iteration time; checkpoint-free policies return the baseline.
  TimeNs iteration_duration = 0;
  // Extra per-iteration stall the policy charges on top (e.g. Checkmate's
  // gradient-replication tax).
  TimeNs added_stall = 0;
};

// One stage of a recovery fallback chain. The host executes stages in order;
// a stage that cannot produce a restorable state falls through to the next.
enum class RecoveryStepKind {
  kRestoreFromLocalCpu,    // Every rank reloads its own CPU replica.
  kFetchFromPeers,         // Replaced ranks fetch replicas from group peers.
  kFetchFromPersistent,    // Everyone rolls back to the persistent tier.
  kReplayLoggedGradients,  // Persistent base + deterministic gradient replay.
  kRecomputeFromPeers,     // Rebuild lost state from peer redundancy in place.
};

std::string_view RecoveryStepKindName(RecoveryStepKind kind);

struct RecoveryStep {
  RecoveryStepKind kind = RecoveryStepKind::kFetchFromPersistent;
  // kReplayLoggedGradients: fraction of an iteration's time each replayed
  // iteration costs (replay skips the forward pass's data loading / eval).
  double replay_cost_fraction = 0.0;
  // kRecomputeFromPeers: iterations-worth of recompute work, independent of
  // how far back the failure reaches.
  double recompute_iterations = 0.0;
};

struct RecoveryPlan {
  std::vector<RecoveryStep> steps;
};

// Everything a policy may condition a recovery plan on.
struct RecoverySituation {
  FailureType type = FailureType::kSoftware;
  // Freshly replaced (empty-DRAM) ranks; empty for software failures.
  std::vector<int> replaced_ranks;
  // Whether every replaced rank's checkpoint is servable from surviving
  // group peers (Algorithm 1's Recoverable predicate).
  bool peer_recoverable = true;
  int64_t iteration_at_failure = 0;
};

// Self-reported steady-state economics, on the fig09/fig14 cost vocabulary.
struct PolicyCostReport {
  // Fraction of iteration time spent on protection (checkpoint traffic,
  // replication stall, serialization amortization).
  double steady_state_overhead_fraction = 0.0;
  // Expected wall-clock from failure detection to resumed training for the
  // policy's *typical* (first-chain) recovery path, excluding fixed warmup.
  TimeNs expected_recovery_fetch_time = 0;
  // Expected iterations of progress lost at a random failure instant.
  double expected_rollback_iterations = 0.0;
};

// The slice of GeminiSystem a policy sees. Const accessors answer questions;
// the non-const ones let a policy (or the selector) touch shared services.
class PolicyHost {
 public:
  virtual ~PolicyHost() = default;

  virtual Simulator& sim() = 0;
  virtual MetricsRegistry& metrics() = 0;
  virtual RunTracer& tracer() = 0;

  // Schedule facts (Algorithm 2 outcome, Section 5.3 interval).
  virtual const ExecutionResult& execution() const = 0;
  virtual int checkpoint_interval_iterations() const = 0;

  virtual int num_machines() const = 0;
  virtual int num_replicas() const = 0;
  virtual Bytes replica_bytes() const = 0;
  virtual int64_t current_iteration() const = 0;

  // Config-derived knobs policies price their decisions with.
  virtual TimeNs default_persistent_interval() const = 0;
  virtual BytesPerSecond serialization_bandwidth() const = 0;
  virtual TimeNs restart_warmup() const = 0;
  virtual BytesPerSecond persistent_bandwidth() const = 0;
  virtual BytesPerSecond network_bandwidth() const = 0;

  // Online signals (auditor + redundancy gauge) the Chameleon selector keys
  // its switch rules on.
  virtual double observed_failure_rate_per_hour() const = 0;
  virtual TimeNs interference_inflation() const = 0;
  virtual double degraded_seconds() const = 0;

  // Observed delta-to-full byte ratio of CPU-tier commits when the host runs
  // incremental delta checkpoints; 1.0 otherwise. Policies scale their
  // steady-state checkpoint-traffic cost by it.
  virtual double incremental_delta_fraction() const { return 1.0; }

  // Drops any half-built checkpoint block (used when a policy switch makes
  // the staged snapshots meaningless).
  virtual void DiscardStagedBlock() = 0;
};

class ProtectionPolicy {
 public:
  virtual ~ProtectionPolicy() = default;

  virtual PolicyKind kind() const = 0;
  virtual std::string_view name() const = 0;

  // Called when the policy becomes (or stops being) the active strategy.
  // Activate resolves metric handles and publishes the policy's overhead
  // gauge ("policy.<name>.overhead_fraction").
  virtual void Activate(PolicyHost& host);
  virtual void Deactivate(PolicyHost& host);

  // Whether the policy maintains CPU-memory replicas (drives re-protection
  // after hardware recovery and the group-loss warning).
  virtual bool uses_cpu_checkpoints() const = 0;

  // Decide this iteration's capture/commit/stall. `has_staged_block` reports
  // whether a previous iteration's snapshots are still staged.
  virtual IterationPlan PlanIteration(PolicyHost& host, int64_t iteration,
                                      bool has_staged_block) = 0;

  // Bookkeeping hook after a staged block lands in the holders' stores.
  virtual void OnCheckpointCommitted(PolicyHost& host, int64_t iteration);

  // Cadence of the blocking persistent-tier checkpoint; <= 0 disables it.
  virtual TimeNs PersistentInterval(const PolicyHost& host) const = 0;

  // torch.save bill paid before recovery proceeds (serializing the in-memory
  // replicas each machine holds); zero for policies without CPU replicas.
  virtual TimeNs RecoverySerializationTime(const PolicyHost& host) const = 0;

  // The ordered fallback chain for this failure.
  virtual RecoveryPlan BuildRecoveryPlan(const PolicyHost& host,
                                         const RecoverySituation& situation) const = 0;

  virtual PolicyCostReport CostReport(const PolicyHost& host) const = 0;
};

// ---- Policy configuration ---------------------------------------------------

struct TierCheckOptions {
  // Persistent cadence (vs. GEMINI's hours-scale default): pay the
  // serialization stall often, bound the worst-case rollback tightly.
  TimeNs persistent_interval = Minutes(30);
  // Cap on the persistent serialization stall as a fraction of training
  // time; the policy stretches the interval to stay under it (CheckFreq's
  // budgeted-frequency idea, shared via cost_model.h).
  double overhead_budget = 0.035;
};

struct CheckmateOptions {
  // Gradient bytes per iteration relative to the full model-state shard
  // (gradients are one of the six mixed-precision state copies).
  double gradient_bytes_fraction = 1.0 / 6.0;
  // Per-iteration training stall of logging gradients to peers (they ride
  // the backward pass's existing all-reduce; near-zero by design).
  double stall_fraction = 0.002;
  // Cost of replaying one logged iteration relative to executing it.
  double replay_cost_fraction = 0.5;
};

struct RecomputeOptions {
  // Iterations-worth of recompute work to rebuild a lost shard from peer
  // activations/redundancy ("All is Not Lost" layer-level recompute).
  double recompute_iterations = 2.0;
};

struct ChameleonOptions {
  PolicyKind initial = PolicyKind::kGemini;
  // Switch rules are evaluated every `decision_interval_iterations`, with at
  // least `min_iterations_between_switches` between switches (hysteresis).
  int64_t decision_interval_iterations = 16;
  int64_t min_iterations_between_switches = 32;
  // Failure-rate band (failures/hour, auditor-observed): above the high
  // water mark buy the fastest recovery (GEMINI); below the low water mark
  // shed checkpoint overhead (Checkmate).
  double high_failure_rate_per_hour = 1.0;
  double low_failure_rate_per_hour = 0.05;
  // Redundancy-degradation growth per decision window (seconds of
  // `system.redundancy.degraded_seconds`) that tips toward TierCheck's
  // tighter persistent cadence.
  double degraded_seconds_threshold = 60.0;
  // Interference-inflation growth per decision window that tips toward
  // Checkmate (checkpoint traffic is colliding with training).
  TimeNs interference_inflation_threshold = Seconds(2);
};

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kGemini;
  TierCheckOptions tiercheck;
  CheckmateOptions checkmate;
  RecomputeOptions recompute;
  ChameleonOptions chameleon;

  // Knob sanity (fractions in range, intervals positive where required).
  Status Validate() const;
};

// Builds the configured policy (a ChameleonSelector for kChameleon).
std::unique_ptr<ProtectionPolicy> MakeProtectionPolicy(const PolicyConfig& config);

}  // namespace gemini

#endif  // SRC_POLICY_PROTECTION_POLICY_H_
