#include "src/policy/cost_model.h"

#include <algorithm>
#include <cstdint>

namespace gemini {

TimeNs AlignUpToIterations(TimeNs interval, TimeNs iteration_time) {
  const int64_t iterations =
      std::max<int64_t>(1, (interval + iteration_time - 1) / iteration_time);
  return iterations * iteration_time;
}

TimeNs SerializationStall(Bytes bytes_per_machine, BytesPerSecond serialization_bandwidth) {
  return TransferTime(bytes_per_machine, serialization_bandwidth);
}

TimeNs PersistentUploadTime(Bytes total_bytes, BytesPerSecond persistent_bandwidth) {
  return TransferTime(total_bytes, persistent_bandwidth);
}

TimeNs BudgetedInterval(TimeNs stall_per_checkpoint, double overhead_budget,
                        TimeNs min_interval, TimeNs iteration_time) {
  const TimeNs budget_interval =
      static_cast<TimeNs>(static_cast<double>(stall_per_checkpoint) / overhead_budget);
  return AlignUpToIterations(std::max(budget_interval, min_interval), iteration_time);
}

}  // namespace gemini
