#include "src/policy/protection_policy.h"

#include <string>

#include "src/policy/chameleon_selector.h"
#include "src/policy/checkmate_policy.h"
#include "src/policy/gemini_policy.h"
#include "src/policy/recompute_policy.h"
#include "src/policy/tiercheck_policy.h"

namespace gemini {

std::string_view PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kGemini:
      return "gemini";
    case PolicyKind::kTierCheck:
      return "tiercheck";
    case PolicyKind::kCheckmate:
      return "checkmate";
    case PolicyKind::kRecompute:
      return "recompute";
    case PolicyKind::kChameleon:
      return "chameleon";
  }
  return "unknown";
}

std::string_view RecoveryStepKindName(RecoveryStepKind kind) {
  switch (kind) {
    case RecoveryStepKind::kRestoreFromLocalCpu:
      return "restore_from_local_cpu";
    case RecoveryStepKind::kFetchFromPeers:
      return "fetch_from_peers";
    case RecoveryStepKind::kFetchFromPersistent:
      return "fetch_from_persistent";
    case RecoveryStepKind::kReplayLoggedGradients:
      return "replay_logged_gradients";
    case RecoveryStepKind::kRecomputeFromPeers:
      return "recompute_from_peers";
  }
  return "unknown";
}

void ProtectionPolicy::Activate(PolicyHost& host) {
  // Publish the self-reported overhead so selectors and benches read every
  // policy's economics from one place, whether or not it ever ran.
  const PolicyCostReport report = CostReport(host);
  host.metrics()
      .gauge("policy." + std::string(name()) + ".overhead_fraction")
      .Set(report.steady_state_overhead_fraction);
  host.metrics()
      .gauge("policy." + std::string(name()) + ".expected_rollback_iterations")
      .Set(report.expected_rollback_iterations);
}

void ProtectionPolicy::Deactivate(PolicyHost& host) { (void)host; }

void ProtectionPolicy::OnCheckpointCommitted(PolicyHost& host, int64_t iteration) {
  (void)host;
  (void)iteration;
}

Status PolicyConfig::Validate() const {
  if (tiercheck.persistent_interval <= 0) {
    return InvalidArgumentError("tiercheck.persistent_interval must be positive");
  }
  if (tiercheck.overhead_budget <= 0.0 || tiercheck.overhead_budget >= 1.0) {
    return InvalidArgumentError("tiercheck.overhead_budget must be in (0, 1)");
  }
  if (checkmate.gradient_bytes_fraction <= 0.0 || checkmate.gradient_bytes_fraction > 1.0) {
    return InvalidArgumentError("checkmate.gradient_bytes_fraction must be in (0, 1]");
  }
  if (checkmate.stall_fraction < 0.0 || checkmate.stall_fraction >= 1.0) {
    return InvalidArgumentError("checkmate.stall_fraction must be in [0, 1)");
  }
  if (checkmate.replay_cost_fraction < 0.0 || checkmate.replay_cost_fraction > 1.0) {
    return InvalidArgumentError("checkmate.replay_cost_fraction must be in [0, 1]");
  }
  if (recompute.recompute_iterations < 0.0) {
    return InvalidArgumentError("recompute.recompute_iterations must be non-negative");
  }
  if (chameleon.initial == PolicyKind::kChameleon) {
    return InvalidArgumentError("chameleon.initial must name a concrete policy");
  }
  if (chameleon.decision_interval_iterations < 1) {
    return InvalidArgumentError("chameleon.decision_interval_iterations must be >= 1");
  }
  if (chameleon.min_iterations_between_switches < 0) {
    return InvalidArgumentError("chameleon.min_iterations_between_switches must be >= 0");
  }
  if (chameleon.low_failure_rate_per_hour < 0.0 ||
      chameleon.high_failure_rate_per_hour <= chameleon.low_failure_rate_per_hour) {
    return InvalidArgumentError(
        "chameleon failure-rate band must satisfy 0 <= low < high");
  }
  return Status::Ok();
}

std::unique_ptr<ProtectionPolicy> MakeProtectionPolicy(const PolicyConfig& config) {
  switch (config.kind) {
    case PolicyKind::kGemini:
      return std::make_unique<GeminiPolicy>();
    case PolicyKind::kTierCheck:
      return std::make_unique<TierCheckPolicy>(config.tiercheck);
    case PolicyKind::kCheckmate:
      return std::make_unique<CheckmatePolicy>(config.checkmate);
    case PolicyKind::kRecompute:
      return std::make_unique<RecomputePolicy>(config.recompute);
    case PolicyKind::kChameleon:
      return std::make_unique<ChameleonSelector>(config);
  }
  return std::make_unique<GeminiPolicy>();
}

}  // namespace gemini
