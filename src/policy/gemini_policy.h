// The paper's strategy, extracted behind the policy seam: CPU-memory
// checkpoints every interval (Algorithm 2 traffic inside idle spans),
// hours-scale persistent checkpoints, and the Section 6.2 recovery chains.
//
// Every decision reproduces the pre-refactor GeminiSystem conditions exactly
// — same stage/commit predicates, same commit instant, same fallback order —
// so default-config runs stay byte-identical (fig07/09/14 acceptance).
#ifndef SRC_POLICY_GEMINI_POLICY_H_
#define SRC_POLICY_GEMINI_POLICY_H_

#include "src/policy/protection_policy.h"

namespace gemini {

class GeminiPolicy : public ProtectionPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kGemini; }
  std::string_view name() const override { return "gemini"; }
  bool uses_cpu_checkpoints() const override { return true; }

  IterationPlan PlanIteration(PolicyHost& host, int64_t iteration,
                              bool has_staged_block) override;
  TimeNs PersistentInterval(const PolicyHost& host) const override;
  TimeNs RecoverySerializationTime(const PolicyHost& host) const override;
  RecoveryPlan BuildRecoveryPlan(const PolicyHost& host,
                                 const RecoverySituation& situation) const override;
  PolicyCostReport CostReport(const PolicyHost& host) const override;
};

}  // namespace gemini

#endif  // SRC_POLICY_GEMINI_POLICY_H_
