#include "src/policy/chameleon_selector.h"

#include <string>

#include "src/common/logging.h"
#include "src/policy/checkmate_policy.h"
#include "src/policy/gemini_policy.h"
#include "src/policy/recompute_policy.h"
#include "src/policy/tiercheck_policy.h"

namespace gemini {

ChameleonSelector::ChameleonSelector(const PolicyConfig& config)
    : options_(config.chameleon) {
  policies_[0] = std::make_unique<GeminiPolicy>();
  policies_[1] = std::make_unique<TierCheckPolicy>(config.tiercheck);
  policies_[2] = std::make_unique<CheckmatePolicy>(config.checkmate);
  policies_[3] = std::make_unique<RecomputePolicy>(config.recompute);
  active_ = &policy_for(options_.initial);
}

ProtectionPolicy& ChameleonSelector::policy_for(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kGemini:
      return *policies_[0];
    case PolicyKind::kTierCheck:
      return *policies_[1];
    case PolicyKind::kCheckmate:
      return *policies_[2];
    case PolicyKind::kRecompute:
      return *policies_[3];
    case PolicyKind::kChameleon:
      break;  // Validated out; fall through to the default below.
  }
  return *policies_[0];
}

void ChameleonSelector::Activate(PolicyHost& host) {
  switches_counter_ = &host.metrics().counter("policy.switches");
  active_kind_gauge_ = &host.metrics().gauge("policy.active_kind");
  active_kind_gauge_->Set(static_cast<double>(static_cast<int>(active_->kind())));
  degraded_seen_ = host.degraded_seconds();
  inflation_seen_ = host.interference_inflation();
  active_->Activate(host);
}

void ChameleonSelector::Deactivate(PolicyHost& host) { active_->Deactivate(host); }

IterationPlan ChameleonSelector::PlanIteration(PolicyHost& host, int64_t iteration,
                                               bool has_staged_block) {
  MaybeSwitch(host, iteration);
  return active_->PlanIteration(host, iteration, has_staged_block);
}

void ChameleonSelector::OnCheckpointCommitted(PolicyHost& host, int64_t iteration) {
  active_->OnCheckpointCommitted(host, iteration);
}

TimeNs ChameleonSelector::PersistentInterval(const PolicyHost& host) const {
  return active_->PersistentInterval(host);
}

TimeNs ChameleonSelector::RecoverySerializationTime(const PolicyHost& host) const {
  return active_->RecoverySerializationTime(host);
}

RecoveryPlan ChameleonSelector::BuildRecoveryPlan(const PolicyHost& host,
                                                  const RecoverySituation& situation) const {
  return active_->BuildRecoveryPlan(host, situation);
}

PolicyCostReport ChameleonSelector::CostReport(const PolicyHost& host) const {
  return active_->CostReport(host);
}

void ChameleonSelector::MaybeSwitch(PolicyHost& host, int64_t iteration) {
  if (iteration % options_.decision_interval_iterations != 0) {
    return;
  }
  if (switched_yet_ &&
      iteration - last_switch_iteration_ < options_.min_iterations_between_switches) {
    return;
  }
  const double rate = host.observed_failure_rate_per_hour();
  const double degraded = host.degraded_seconds();
  const TimeNs inflation = host.interference_inflation();
  const double degraded_delta = degraded - degraded_seen_;
  const TimeNs inflation_delta = inflation - inflation_seen_;
  degraded_seen_ = degraded;
  inflation_seen_ = inflation;

  PolicyKind want = active_->kind();
  std::string_view reason;
  if (rate >= options_.high_failure_rate_per_hour) {
    want = PolicyKind::kGemini;
    reason = "failure_rate_high";
  } else if (degraded_delta >= options_.degraded_seconds_threshold) {
    want = PolicyKind::kTierCheck;
    reason = "redundancy_degrading";
  } else if (inflation_delta >= options_.interference_inflation_threshold) {
    want = PolicyKind::kCheckmate;
    reason = "checkpoint_interference";
  } else if (rate <= options_.low_failure_rate_per_hour) {
    want = PolicyKind::kCheckmate;
    reason = "failure_rate_low";
  }
  if (want == active_->kind()) {
    return;
  }
  SwitchTo(host, want, reason, iteration);
}

void ChameleonSelector::SwitchTo(PolicyHost& host, PolicyKind want, std::string_view reason,
                                 int64_t iteration) {
  const PolicyKind from = active_->kind();
  active_->Deactivate(host);
  // The staged block (if any) was captured under the old policy's block
  // structure; the new policy starts a fresh block on its own terms.
  host.DiscardStagedBlock();
  active_ = &policy_for(want);
  active_->Activate(host);
  switches_counter_->Increment();
  active_kind_gauge_->Set(static_cast<double>(static_cast<int>(want)));
  PolicySwitchEvent event;
  event.iteration = iteration;
  event.at = host.sim().now();
  event.from = from;
  event.to = want;
  event.reason = std::string(reason);
  switches_.push_back(event);
  host.tracer().Event("policy_switch", "policy",
                      {TraceAttr::Text("from", std::string(PolicyKindName(from))),
                       TraceAttr::Text("to", std::string(PolicyKindName(want))),
                       TraceAttr::Text("reason", std::string(reason)),
                       TraceAttr::Int("iteration", iteration)});
  last_switch_iteration_ = iteration;
  switched_yet_ = true;
  GEMINI_LOG(kInfo) << "chameleon: switched " << PolicyKindName(from) << " -> "
                    << PolicyKindName(want) << " at iteration " << iteration << " ("
                    << reason << ")";
}

}  // namespace gemini
