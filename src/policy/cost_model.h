// Shared checkpoint-cost arithmetic.
//
// The related-work models (src/baselines/related_work.cc) and the protection
// policies price the same primitives — serialization stalls, persistent
// uploads, budget-capped checkpoint frequency. One copy here keeps baseline
// numbers and policy numbers from drifting apart (they used to be
// re-derived independently on each side).
#ifndef SRC_POLICY_COST_MODEL_H_
#define SRC_POLICY_COST_MODEL_H_

#include "src/common/units.h"

namespace gemini {

// Rounds `interval` up to a whole number of iterations (at least one):
// checkpoints start on iteration boundaries.
TimeNs AlignUpToIterations(TimeNs interval, TimeNs iteration_time);

// torch.save-style blocking serialization of one machine's shard.
TimeNs SerializationStall(Bytes bytes_per_machine, BytesPerSecond serialization_bandwidth);

// Time to push `total_bytes` through a shared persistent store (excluding
// queueing behind other writers).
TimeNs PersistentUploadTime(Bytes total_bytes, BytesPerSecond persistent_bandwidth);

// CheckFreq-style budgeted frequency: the shortest interval that keeps
// `stall_per_checkpoint / interval <= overhead_budget`, but never shorter
// than `min_interval` (the store must drain one checkpoint before the next),
// aligned up to iteration boundaries.
TimeNs BudgetedInterval(TimeNs stall_per_checkpoint, double overhead_budget,
                        TimeNs min_interval, TimeNs iteration_time);

}  // namespace gemini

#endif  // SRC_POLICY_COST_MODEL_H_
