#include "src/policy/gemini_policy.h"

#include <algorithm>

namespace gemini {

IterationPlan GeminiPolicy::PlanIteration(PolicyHost& host, int64_t iteration,
                                          bool has_staged_block) {
  (void)has_staged_block;
  // Checkpoint block structure (Section 5.3): stage at the start of a
  // k-iteration block, commit during the block's last iteration once the
  // Algorithm-2 transmission time has elapsed (never past iteration end).
  const int interval = host.checkpoint_interval_iterations();
  IterationPlan plan;
  plan.stage_snapshot = iteration % interval == 0;
  plan.commit_staged = host.num_replicas() >= 1 && iteration % interval == interval - 1;
  plan.commit_delay =
      std::min(host.execution().checkpoint_done, host.execution().iteration_time);
  plan.iteration_duration = host.execution().iteration_time;
  return plan;
}

TimeNs GeminiPolicy::PersistentInterval(const PolicyHost& host) const {
  return host.default_persistent_interval();
}

TimeNs GeminiPolicy::RecoverySerializationTime(const PolicyHost& host) const {
  // Each machine serializes the m replicas it holds with torch.save before
  // recovery proceeds (Figure 14's 162 s).
  return host.num_replicas() *
         TransferTime(host.replica_bytes(), host.serialization_bandwidth());
}

RecoveryPlan GeminiPolicy::BuildRecoveryPlan(const PolicyHost& host,
                                             const RecoverySituation& situation) const {
  (void)host;
  // Section 6.2's cases, as fallback chains: software restores locally,
  // hardware case 1 fetches from group peers, and everything degrades to the
  // persistent tier (case 2, or any exhausted/corrupted chain above it).
  RecoveryPlan plan;
  if (situation.type == FailureType::kSoftware) {
    plan.steps.push_back({RecoveryStepKind::kRestoreFromLocalCpu});
  } else if (situation.peer_recoverable) {
    plan.steps.push_back({RecoveryStepKind::kFetchFromPeers});
  }
  plan.steps.push_back({RecoveryStepKind::kFetchFromPersistent});
  return plan;
}

PolicyCostReport GeminiPolicy::CostReport(const PolicyHost& host) const {
  PolicyCostReport report;
  // Incremental delta checkpoints shrink the steady-state traffic to the
  // observed delta-to-full byte ratio (1.0 when the mode is off).
  report.steady_state_overhead_fraction =
      host.execution().overhead_fraction * host.incremental_delta_fraction();
  // Typical path: hardware case 1, one replica crossing the network at line
  // rate (software recovery moves no bytes at all).
  report.expected_recovery_fetch_time =
      TransferTime(host.replica_bytes(), host.network_bandwidth());
  // CPU checkpoints land every interval; a uniform failure instant loses
  // half an interval on average.
  report.expected_rollback_iterations =
      static_cast<double>(host.checkpoint_interval_iterations()) / 2.0;
  return report;
}

}  // namespace gemini
