// TierCheck: tiered CPU + persistent checkpointing with a frequency split.
//
// Keeps GEMINI's per-interval CPU-memory checkpoints (fast common-case
// recovery) but runs the persistent tier on a minutes-scale cadence instead
// of hours, so the worst-case rollback after a group loss is bounded by the
// tight persistent interval rather than by Figure 1's multi-hour gap. The
// price is paying the blocking serialization stall far more often; the
// cadence is stretched just enough to keep that stall under the configured
// overhead budget (the CheckFreq idea, priced through cost_model.h).
#ifndef SRC_POLICY_TIERCHECK_POLICY_H_
#define SRC_POLICY_TIERCHECK_POLICY_H_

#include "src/policy/protection_policy.h"

namespace gemini {

class TierCheckPolicy : public ProtectionPolicy {
 public:
  explicit TierCheckPolicy(TierCheckOptions options) : options_(options) {}

  PolicyKind kind() const override { return PolicyKind::kTierCheck; }
  std::string_view name() const override { return "tiercheck"; }
  bool uses_cpu_checkpoints() const override { return true; }

  IterationPlan PlanIteration(PolicyHost& host, int64_t iteration,
                              bool has_staged_block) override;
  TimeNs PersistentInterval(const PolicyHost& host) const override;
  TimeNs RecoverySerializationTime(const PolicyHost& host) const override;
  RecoveryPlan BuildRecoveryPlan(const PolicyHost& host,
                                 const RecoverySituation& situation) const override;
  PolicyCostReport CostReport(const PolicyHost& host) const override;

  const TierCheckOptions& options() const { return options_; }

 private:
  TierCheckOptions options_;
};

}  // namespace gemini

#endif  // SRC_POLICY_TIERCHECK_POLICY_H_
