// Recompute-from-peers baseline ("All is Not Lost", PAPERS.md).
//
// No checkpoints at all: zero steady-state overhead. When a machine is
// lost, its model-state shard is rebuilt from the redundancy naturally
// present on peers (ZeRO's replicated optimizer inputs / layer-level
// activations), costing a fixed few iterations of recompute work. The
// fallback — when the whole redundancy group is gone — is a rollback to
// whatever the persistent tier last saw (the seed checkpoint, absent any
// other policy writing to it).
#ifndef SRC_POLICY_RECOMPUTE_POLICY_H_
#define SRC_POLICY_RECOMPUTE_POLICY_H_

#include "src/policy/protection_policy.h"

namespace gemini {

class RecomputePolicy : public ProtectionPolicy {
 public:
  explicit RecomputePolicy(RecomputeOptions options) : options_(options) {}

  PolicyKind kind() const override { return PolicyKind::kRecompute; }
  std::string_view name() const override { return "recompute"; }
  bool uses_cpu_checkpoints() const override { return false; }

  IterationPlan PlanIteration(PolicyHost& host, int64_t iteration,
                              bool has_staged_block) override;
  TimeNs PersistentInterval(const PolicyHost& host) const override;
  TimeNs RecoverySerializationTime(const PolicyHost& host) const override;
  RecoveryPlan BuildRecoveryPlan(const PolicyHost& host,
                                 const RecoverySituation& situation) const override;
  PolicyCostReport CostReport(const PolicyHost& host) const override;

  const RecomputeOptions& options() const { return options_; }

 private:
  RecomputeOptions options_;
};

}  // namespace gemini

#endif  // SRC_POLICY_RECOMPUTE_POLICY_H_
