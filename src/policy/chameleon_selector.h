// Chameleon: online protection-policy selection.
//
// Owns one instance of every concrete policy and delegates the full
// ProtectionPolicy surface to the active one, re-evaluating the choice at
// fixed iteration intervals against three live signals:
//
//  * the auditor-observed failure rate (failures/hour over a sliding
//    window) — frequent failures buy GEMINI's fast in-memory recovery,
//    rare ones shed its overhead for Checkmate's near-free logging;
//  * growth of `system.redundancy.degraded_seconds` — when hardware churn
//    keeps the replica sets degraded, TierCheck's tight persistent cadence
//    bounds the exposure;
//  * growth of auditor-attributed interference inflation — when checkpoint
//    traffic is colliding with training, Checkmate removes the traffic.
//
// Rules are evaluated in that priority order, with hysteresis (a minimum
// iteration gap between switches). All inputs are simulated-time
// deterministic, so same-seed runs switch at identical iterations.
#ifndef SRC_POLICY_CHAMELEON_SELECTOR_H_
#define SRC_POLICY_CHAMELEON_SELECTOR_H_

#include <array>
#include <memory>
#include <string>

#include "src/policy/protection_policy.h"

namespace gemini {

// One recorded switch, for tests, benches, and the trace timeline.
struct PolicySwitchEvent {
  int64_t iteration = 0;
  TimeNs at = 0;
  PolicyKind from = PolicyKind::kGemini;
  PolicyKind to = PolicyKind::kGemini;
  std::string reason;
};

class ChameleonSelector : public ProtectionPolicy {
 public:
  explicit ChameleonSelector(const PolicyConfig& config);

  PolicyKind kind() const override { return PolicyKind::kChameleon; }
  std::string_view name() const override { return "chameleon"; }
  bool uses_cpu_checkpoints() const override { return active_->uses_cpu_checkpoints(); }

  void Activate(PolicyHost& host) override;
  void Deactivate(PolicyHost& host) override;
  IterationPlan PlanIteration(PolicyHost& host, int64_t iteration,
                              bool has_staged_block) override;
  void OnCheckpointCommitted(PolicyHost& host, int64_t iteration) override;
  TimeNs PersistentInterval(const PolicyHost& host) const override;
  TimeNs RecoverySerializationTime(const PolicyHost& host) const override;
  RecoveryPlan BuildRecoveryPlan(const PolicyHost& host,
                                 const RecoverySituation& situation) const override;
  PolicyCostReport CostReport(const PolicyHost& host) const override;

  const ProtectionPolicy& active_policy() const { return *active_; }
  const std::vector<PolicySwitchEvent>& switches() const { return switches_; }
  const ChameleonOptions& options() const { return options_; }

 private:
  // Evaluates the switch rules at a decision boundary; swaps the active
  // policy (Deactivate -> DiscardStagedBlock -> Activate) when one fires.
  void MaybeSwitch(PolicyHost& host, int64_t iteration);
  void SwitchTo(PolicyHost& host, PolicyKind want, std::string_view reason,
                int64_t iteration);
  ProtectionPolicy& policy_for(PolicyKind kind);

  ChameleonOptions options_;
  std::array<std::unique_ptr<ProtectionPolicy>, 4> policies_;
  ProtectionPolicy* active_ = nullptr;
  std::vector<PolicySwitchEvent> switches_;
  int64_t last_switch_iteration_ = 0;
  bool switched_yet_ = false;
  // Signal levels sampled at the previous decision, for growth deltas.
  double degraded_seen_ = 0.0;
  TimeNs inflation_seen_ = 0;
  // Metric handles (resolved on Activate).
  Counter* switches_counter_ = nullptr;
  Gauge* active_kind_gauge_ = nullptr;
};

}  // namespace gemini

#endif  // SRC_POLICY_CHAMELEON_SELECTOR_H_
