#include "src/agent/root_agent.h"

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace gemini {

RootAgent::RootAgent(Simulator& sim, Cluster& cluster, KvStoreCluster& kv, int rank,
                     AgentConfig config, std::function<void(const FailureReport&)> on_failure)
    : sim_(sim),
      cluster_(cluster),
      kv_(kv),
      rank_(rank),
      config_(config),
      on_failure_(std::move(on_failure)) {
  scan_timer_ =
      std::make_unique<RepeatingTimer>(sim_, config_.root_scan_interval, [this] { OnScanTick(); });
}

RootAgent::~RootAgent() = default;

void RootAgent::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics != nullptr) {
    root_scans_counter_ = &metrics->counter("agent.root_scans");
    heartbeat_misses_counter_ = &metrics->counter("agent.heartbeat_misses");
    failures_reported_counter_ = &metrics->counter("agent.failures_reported");
  } else {
    root_scans_counter_ = nullptr;
    heartbeat_misses_counter_ = nullptr;
    failures_reported_counter_ = nullptr;
  }
}

void RootAgent::Start() {
  started_at_ = sim_.now();
  scan_timer_->Start();
}

void RootAgent::Stop() { scan_timer_->Stop(); }

void RootAgent::SetPaused(bool paused) {
  paused_ = paused;
  if (!paused) {
    grace_until_ = sim_.now() + config_.root_scan_interval;
  }
}

void RootAgent::ClearHandled(const std::vector<int>& ranks) {
  for (const int rank : ranks) {
    handled_.erase(rank);
  }
}

void RootAgent::ClaimLeadership(LeaseId lease) {
  kv_.PutIfAbsent(kRootKey, std::to_string(rank_), lease, [](Status) {});
}

void RootAgent::OnScanTick() {
  // A dead root machine stops scanning; workers will notice the root key
  // expire and promote a replacement.
  if (!cluster_.machine(rank_).alive() || paused_ || sim_.now() < grace_until_) {
    return;
  }
  // Health keys only become authoritative once the initial publish plus one
  // full lease period has passed.
  if (sim_.now() < started_at_ + config_.health_lease_ttl + config_.root_scan_interval) {
    return;
  }

  if (root_scans_counter_ != nullptr) {
    root_scans_counter_->Increment();
  }
  const std::map<std::string, KvEntry> health = kv_.List(kHealthKeyPrefix);
  std::vector<int> hardware_failed;
  std::vector<int> software_failed;
  for (int rank = 0; rank < cluster_.size(); ++rank) {
    if (handled_.contains(rank)) {
      continue;
    }
    const auto it = health.find(kHealthKeyPrefix + std::to_string(rank));
    if (it == health.end()) {
      // Lease expired: the machine stopped heartbeating => hardware failure.
      if (heartbeat_misses_counter_ != nullptr) {
        heartbeat_misses_counter_->Increment();
      }
      hardware_failed.push_back(rank);
    } else if (it->second.value == kStatusProcessDown) {
      software_failed.push_back(rank);
    }
  }

  // Hardware failures subsume concurrent software failures: replacement and
  // group-based retrieval handle both (Section 6.2 case analysis).
  if (!hardware_failed.empty()) {
    for (const int rank : hardware_failed) {
      handled_.insert(rank);
    }
    FailureReport report;
    report.type = FailureType::kHardware;
    report.ranks = hardware_failed;
    report.detected_at = sim_.now();
    GEMINI_LOG(kInfo) << "root agent: detected hardware failure on " << hardware_failed.size()
                      << " machine(s) at " << FormatDuration(sim_.now());
    if (failures_reported_counter_ != nullptr) {
      failures_reported_counter_->Increment();
    }
    on_failure_(report);
    return;
  }
  if (!software_failed.empty()) {
    for (const int rank : software_failed) {
      handled_.insert(rank);
    }
    FailureReport report;
    report.type = FailureType::kSoftware;
    report.ranks = software_failed;
    report.detected_at = sim_.now();
    GEMINI_LOG(kInfo) << "root agent: detected software failure on " << software_failed.size()
                      << " machine(s) at " << FormatDuration(sim_.now());
    if (failures_reported_counter_ != nullptr) {
      failures_reported_counter_->Increment();
    }
    on_failure_(report);
  }
}

}  // namespace gemini
