// Failure injection.
//
// Reproduces the failure processes the paper's evaluation is driven by:
// scripted failures (inject type X at time T on ranks R) for the recovery
// experiments, and Poisson arrivals for the scalability study (OPT-175B
// observed ~1.5% of instances failing per day; the majority are software
// failures or single-machine hardware failures).
//
// For the recovery-hardening experiments three further shapes are supported:
//  * trigger-armed events — "when the system reaches <trigger point>, wait
//    `delay`, then fail ranks R". GeminiSystem fires the trigger points
//    (kTriggerRecoveryStart, kTriggerRetrievalStart, kTriggerReprotectionStart)
//    as it crosses them, which makes failure-during-recovery cascades exactly
//    reproducible;
//  * correlated bursts — several machines failing a fixed spacing apart
//    (rack/switch-level incidents from the production traces);
//  * checkpoint bit-flip corruption — flips one payload bit of a completed
//    replica through a hook the system installs, driving the CRC-verified
//    retrieval paths.
#ifndef SRC_AGENT_FAILURE_INJECTOR_H_
#define SRC_AGENT_FAILURE_INJECTOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/simulator.h"

namespace gemini {

class Counter;
class MetricsRegistry;

enum class FailureType {
  // Training process crash; hardware (and CPU memory contents) survive.
  kSoftware,
  // Machine loss: unreachable, DRAM contents gone, must be replaced.
  kHardware,
};

std::string_view FailureTypeName(FailureType type);

// Trigger points fired by GeminiSystem as recovery progresses.
inline constexpr char kTriggerRecoveryStart[] = "recovery_start";
inline constexpr char kTriggerRetrievalStart[] = "retrieval_start";
inline constexpr char kTriggerReprotectionStart[] = "reprotection_start";

struct FailureEvent {
  TimeNs time = 0;
  FailureType type = FailureType::kSoftware;
  std::vector<int> ranks;
};

class FailureInjector {
 public:
  // `on_injected` (optional) observes each injected event, after machine
  // health has been flipped — detection still goes through the agents.
  FailureInjector(Simulator& sim, Cluster& cluster, uint64_t seed);

  void set_observer(std::function<void(const FailureEvent&)> observer) {
    observer_ = std::move(observer);
  }

  // Schedules one failure at an absolute time.
  void InjectAt(TimeNs when, FailureType type, std::vector<int> ranks);

  // Correlated burst: ranks[i] fails at `when + i * spacing` (spacing 0
  // collapses to one multi-rank event at `when`).
  void InjectBurstAt(TimeNs when, FailureType type, std::vector<int> ranks, TimeNs spacing);

  // Arms a failure that fires `delay` after the named trigger point is next
  // crossed. Each armed event fires exactly once.
  void ArmOnTrigger(std::string trigger, FailureType type, std::vector<int> ranks,
                    TimeNs delay = 0);

  // Schedules / arms a checkpoint bit flip on `holder_rank`'s completed
  // replica of `owner_rank` (needs the corruption hook installed).
  void InjectCorruptionAt(TimeNs when, int holder_rank, int owner_rank, size_t bit_index);
  void ArmCorruptionOnTrigger(std::string trigger, int holder_rank, int owner_rank,
                              size_t bit_index, TimeNs delay = 0);

  // Same, but flips a bit inside link `chain_index` of the holder's redo-log
  // delta chain for `owner_rank` (incremental checkpoint mode; needs the
  // delta corruption hook installed).
  void InjectDeltaCorruptionAt(TimeNs when, int holder_rank, int owner_rank,
                               size_t chain_index, size_t bit_index);
  void ArmDeltaCorruptionOnTrigger(std::string trigger, int holder_rank, int owner_rank,
                                   size_t chain_index, size_t bit_index, TimeNs delay = 0);

  // Crossed trigger points call this (GeminiSystem does); all events armed on
  // `trigger` are released.
  void Fire(std::string_view trigger);

  // Installed by the system: performs the actual bit flip on the holder's
  // store. Kept as a hook so the injector does not depend on storage.
  void set_corruption_hook(std::function<Status(int holder, int owner, size_t bit)> hook) {
    corruption_hook_ = std::move(hook);
  }
  void set_delta_corruption_hook(
      std::function<Status(int holder, int owner, size_t chain_index, size_t bit)> hook) {
    delta_corruption_hook_ = std::move(hook);
  }

  // Starts Poisson failure arrival: `rate_per_machine_day` failures per
  // machine per day, each software with probability `software_fraction`,
  // each hitting one uniformly random alive machine. Runs until `until`.
  void StartRandomArrivals(double rate_per_machine_day, double software_fraction, TimeNs until);

  // Deferred variant: the Poisson process switches on at `start` (an injected
  // failure-rate shift — e.g. a quiet cluster turning into a failure storm
  // mid-run, the scenario the Chameleon selector reacts to).
  void StartRandomArrivalsAt(TimeNs start, double rate_per_machine_day,
                             double software_fraction, TimeNs until);

  int64_t injected_count() const { return injected_; }

  // Optional sink for "injector.*" counters; may stay null. Counter handles
  // are resolved here, once, per the hot-path metric convention
  // (src/obs/metrics.h).
  void set_metrics(MetricsRegistry* metrics);

 private:
  struct ArmedEvent {
    FailureType type = FailureType::kSoftware;
    std::vector<int> ranks;
    TimeNs delay = 0;
    // Corruption events target one (holder, owner) replica instead.
    bool corruption = false;
    // Delta-chain corruption targets link `chain_index` of the holder's redo
    // log for the owner.
    bool delta_corruption = false;
    int holder_rank = -1;
    int owner_rank = -1;
    size_t chain_index = 0;
    size_t bit_index = 0;
  };

  void Apply(const FailureEvent& event);
  void ApplyCorruption(int holder_rank, int owner_rank, size_t bit_index);
  void ApplyDeltaCorruption(int holder_rank, int owner_rank, size_t chain_index,
                            size_t bit_index);
  void ScheduleNextRandom(double rate_per_machine_day, double software_fraction, TimeNs until);

  Simulator& sim_;
  Cluster& cluster_;
  Rng rng_;
  std::function<void(const FailureEvent&)> observer_;
  std::function<Status(int holder, int owner, size_t bit)> corruption_hook_;
  std::function<Status(int holder, int owner, size_t chain_index, size_t bit)>
      delta_corruption_hook_;
  std::map<std::string, std::vector<ArmedEvent>> armed_;
  int64_t injected_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  // Metric handles (resolved once in set_metrics).
  Counter* trigger_fires_counter_ = nullptr;
  Counter* corruptions_counter_ = nullptr;
  Counter* failures_counter_ = nullptr;
};

}  // namespace gemini

#endif  // SRC_AGENT_FAILURE_INJECTOR_H_
