// Failure injection.
//
// Reproduces the failure processes the paper's evaluation is driven by:
// scripted failures (inject type X at time T on ranks R) for the recovery
// experiments, and Poisson arrivals for the scalability study (OPT-175B
// observed ~1.5% of instances failing per day; the majority are software
// failures or single-machine hardware failures).
#ifndef SRC_AGENT_FAILURE_INJECTOR_H_
#define SRC_AGENT_FAILURE_INJECTOR_H_

#include <functional>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/sim/simulator.h"

namespace gemini {

class MetricsRegistry;

enum class FailureType {
  // Training process crash; hardware (and CPU memory contents) survive.
  kSoftware,
  // Machine loss: unreachable, DRAM contents gone, must be replaced.
  kHardware,
};

std::string_view FailureTypeName(FailureType type);

struct FailureEvent {
  TimeNs time = 0;
  FailureType type = FailureType::kSoftware;
  std::vector<int> ranks;
};

class FailureInjector {
 public:
  // `on_injected` (optional) observes each injected event, after machine
  // health has been flipped — detection still goes through the agents.
  FailureInjector(Simulator& sim, Cluster& cluster, uint64_t seed);

  void set_observer(std::function<void(const FailureEvent&)> observer) {
    observer_ = std::move(observer);
  }

  // Schedules one failure at an absolute time.
  void InjectAt(TimeNs when, FailureType type, std::vector<int> ranks);

  // Starts Poisson failure arrival: `rate_per_machine_day` failures per
  // machine per day, each software with probability `software_fraction`,
  // each hitting one uniformly random alive machine. Runs until `until`.
  void StartRandomArrivals(double rate_per_machine_day, double software_fraction, TimeNs until);

  int64_t injected_count() const { return injected_; }

  // Optional sink for "injector.*" counters; may stay null.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  void Apply(const FailureEvent& event);
  void ScheduleNextRandom(double rate_per_machine_day, double software_fraction, TimeNs until);

  Simulator& sim_;
  Cluster& cluster_;
  Rng rng_;
  std::function<void(const FailureEvent&)> observer_;
  int64_t injected_ = 0;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace gemini

#endif  // SRC_AGENT_FAILURE_INJECTOR_H_
