// GEMINI root agent (paper Section 3.2 and 6).
//
// Runs on one training machine (the root machine) alongside its worker
// agent. Periodically scans the health keys in the distributed KV store,
// classifies failures (missing key after its lease expired => hardware;
// value "process_down" => software), and reports them to the recovery
// coordinator (the GeminiSystem), which interacts with the cloud operator
// and directs checkpoint retrieval. The root holds the root-leadership key
// under its own lease so workers can detect root death and promote one of
// themselves.
#ifndef SRC_AGENT_ROOT_AGENT_H_
#define SRC_AGENT_ROOT_AGENT_H_

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "src/agent/failure_injector.h"
#include "src/agent/worker_agent.h"
#include "src/cluster/cluster.h"
#include "src/kvstore/kv_store.h"
#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace gemini {

struct FailureReport {
  FailureType type = FailureType::kSoftware;
  std::vector<int> ranks;
  TimeNs detected_at = 0;
};

class RootAgent {
 public:
  // `on_failure` receives each detected failure exactly once per affected
  // rank set; re-detection of already-reported ranks is suppressed until
  // ClearHandled() re-arms them (after recovery completes).
  RootAgent(Simulator& sim, Cluster& cluster, KvStoreCluster& kv, int rank, AgentConfig config,
            std::function<void(const FailureReport&)> on_failure);
  ~RootAgent();

  void Start();
  void Stop();

  int rank() const { return rank_; }
  bool running() const { return scan_timer_ != nullptr && scan_timer_->running(); }

  // Re-arms detection for `ranks` after their recovery completed.
  void ClearHandled(const std::vector<int>& ranks);

  // Pauses failure classification (used during recovery so half-restored
  // state is not re-reported). Unpausing starts a one-scan-period grace
  // window so freshly-published healthy statuses have time to commit.
  void SetPaused(bool paused);

  // Claims the root-leadership key (called at startup and after promotion).
  void ClaimLeadership(LeaseId lease);

  // Optional sink for "agent.*" counters; may stay null. Counter handles are
  // resolved here, once, per the hot-path metric convention
  // (src/obs/metrics.h) — the scan counter fires every scan period.
  void set_metrics(MetricsRegistry* metrics);

 private:
  void OnScanTick();

  Simulator& sim_;
  Cluster& cluster_;
  KvStoreCluster& kv_;
  int rank_;
  AgentConfig config_;
  std::function<void(const FailureReport&)> on_failure_;
  std::unique_ptr<RepeatingTimer> scan_timer_;
  MetricsRegistry* metrics_ = nullptr;
  // Hot-path metric handles (resolved once in set_metrics).
  Counter* root_scans_counter_ = nullptr;
  Counter* heartbeat_misses_counter_ = nullptr;
  Counter* failures_reported_counter_ = nullptr;
  std::set<int> handled_;
  bool paused_ = false;
  TimeNs grace_until_ = 0;
  // Ranks are only reported missing after the store had a chance to expire
  // their lease (avoids false positives at startup).
  TimeNs started_at_ = 0;
};

}  // namespace gemini

#endif  // SRC_AGENT_ROOT_AGENT_H_
