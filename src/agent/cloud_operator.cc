#include "src/agent/cloud_operator.h"

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace gemini {

CloudOperator::CloudOperator(Simulator& sim, Cluster& cluster, CloudOperatorConfig config,
                             uint64_t seed)
    : sim_(sim),
      cluster_(cluster),
      config_(config),
      rng_(seed),
      standby_available_(config.num_standby) {}

void CloudOperator::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics != nullptr) {
    replacements_counter_ = &metrics->counter("cloud.replacements");
    standby_activations_counter_ = &metrics->counter("cloud.standby_activations");
  } else {
    replacements_counter_ = nullptr;
    standby_activations_counter_ = nullptr;
  }
}

void CloudOperator::ReplaceMachine(int rank, std::function<void(Machine&)> done) {
  ++total_replacements_;
  if (replacements_counter_ != nullptr) {
    replacements_counter_->Increment();
  }
  TimeNs delay;
  if (standby_available_ > 0) {
    --standby_available_;
    if (standby_activations_counter_ != nullptr) {
      standby_activations_counter_->Increment();
    }
    delay = config_.standby_activation_delay;
    // The failed machine is returned and another standby is requested; it
    // arrives after a full provisioning delay.
    const TimeNs replenish = static_cast<TimeNs>(rng_.UniformInt(
        config_.provision_delay_min, config_.provision_delay_max));
    sim_.ScheduleAfter(replenish, [this] { ++standby_available_; });
    GEMINI_LOG(kInfo) << "cloud operator: activating standby for rank " << rank;
  } else {
    delay = static_cast<TimeNs>(
        rng_.UniformInt(config_.provision_delay_min, config_.provision_delay_max));
    GEMINI_LOG(kInfo) << "cloud operator: provisioning replacement for rank " << rank << " ("
                      << FormatDuration(delay) << ")";
  }
  sim_.ScheduleAfter(delay, [this, rank, done = std::move(done)] {
    Machine& machine = cluster_.ReplaceMachine(rank);
    GEMINI_LOG(kInfo) << "cloud operator: " << machine.DebugName() << " is ready";
    done(machine);
  });
}

}  // namespace gemini
