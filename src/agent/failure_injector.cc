#include "src/agent/failure_injector.h"

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace gemini {

std::string_view FailureTypeName(FailureType type) {
  switch (type) {
    case FailureType::kSoftware:
      return "software";
    case FailureType::kHardware:
      return "hardware";
  }
  return "unknown";
}

FailureInjector::FailureInjector(Simulator& sim, Cluster& cluster, uint64_t seed)
    : sim_(sim), cluster_(cluster), rng_(seed) {}

void FailureInjector::InjectAt(TimeNs when, FailureType type, std::vector<int> ranks) {
  FailureEvent event;
  event.time = when;
  event.type = type;
  event.ranks = std::move(ranks);
  sim_.ScheduleAt(when, [this, event = std::move(event)] { Apply(event); });
}

void FailureInjector::Apply(const FailureEvent& event) {
  for (const int rank : event.ranks) {
    Machine& machine = cluster_.machine(rank);
    if (!machine.alive()) {
      continue;  // Already dead; nothing more to break.
    }
    machine.set_health(event.type == FailureType::kSoftware ? MachineHealth::kProcessDown
                                                            : MachineHealth::kDead);
    GEMINI_LOG(kInfo) << "failure injector: " << FailureTypeName(event.type) << " failure on "
                      << machine.DebugName() << " at " << FormatDuration(sim_.now());
  }
  ++injected_;
  if (metrics_ != nullptr) {
    metrics_->counter("injector.failures_injected").Increment();
  }
  if (observer_) {
    observer_(event);
  }
}

void FailureInjector::StartRandomArrivals(double rate_per_machine_day, double software_fraction,
                                          TimeNs until) {
  ScheduleNextRandom(rate_per_machine_day, software_fraction, until);
}

void FailureInjector::ScheduleNextRandom(double rate_per_machine_day, double software_fraction,
                                         TimeNs until) {
  const double cluster_rate_per_day = rate_per_machine_day * cluster_.size();
  if (cluster_rate_per_day <= 0) {
    return;
  }
  const double days_to_next = rng_.Exponential(cluster_rate_per_day);
  const TimeNs delay = static_cast<TimeNs>(days_to_next * 24.0 * static_cast<double>(kHour));
  const TimeNs when = sim_.now() + delay;
  if (when > until) {
    return;
  }
  sim_.ScheduleAt(when, [this, rate_per_machine_day, software_fraction, until] {
    const std::vector<int> alive = cluster_.AliveRanks();
    if (!alive.empty()) {
      const int victim =
          alive[static_cast<size_t>(rng_.NextU64Below(static_cast<uint64_t>(alive.size())))];
      FailureEvent event;
      event.time = sim_.now();
      event.type = rng_.Bernoulli(software_fraction) ? FailureType::kSoftware
                                                     : FailureType::kHardware;
      event.ranks = {victim};
      Apply(event);
    }
    ScheduleNextRandom(rate_per_machine_day, software_fraction, until);
  });
}

}  // namespace gemini
