#include "src/agent/failure_injector.h"

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace gemini {

std::string_view FailureTypeName(FailureType type) {
  switch (type) {
    case FailureType::kSoftware:
      return "software";
    case FailureType::kHardware:
      return "hardware";
  }
  return "unknown";
}

FailureInjector::FailureInjector(Simulator& sim, Cluster& cluster, uint64_t seed)
    : sim_(sim), cluster_(cluster), rng_(seed) {}

void FailureInjector::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics != nullptr) {
    trigger_fires_counter_ = &metrics->counter("injector.trigger_fires");
    corruptions_counter_ = &metrics->counter("injector.corruptions_injected");
    failures_counter_ = &metrics->counter("injector.failures_injected");
  } else {
    trigger_fires_counter_ = nullptr;
    corruptions_counter_ = nullptr;
    failures_counter_ = nullptr;
  }
}

void FailureInjector::InjectAt(TimeNs when, FailureType type, std::vector<int> ranks) {
  FailureEvent event;
  event.time = when;
  event.type = type;
  event.ranks = std::move(ranks);
  sim_.ScheduleAt(when, [this, event = std::move(event)] { Apply(event); });
}

void FailureInjector::InjectBurstAt(TimeNs when, FailureType type, std::vector<int> ranks,
                                    TimeNs spacing) {
  if (spacing <= 0) {
    InjectAt(when, type, std::move(ranks));
    return;
  }
  TimeNs at = when;
  for (const int rank : ranks) {
    InjectAt(at, type, {rank});
    at += spacing;
  }
}

void FailureInjector::ArmOnTrigger(std::string trigger, FailureType type, std::vector<int> ranks,
                                   TimeNs delay) {
  ArmedEvent armed;
  armed.type = type;
  armed.ranks = std::move(ranks);
  armed.delay = delay;
  armed_[std::move(trigger)].push_back(std::move(armed));
}

void FailureInjector::InjectCorruptionAt(TimeNs when, int holder_rank, int owner_rank,
                                         size_t bit_index) {
  sim_.ScheduleAt(when, [this, holder_rank, owner_rank, bit_index] {
    ApplyCorruption(holder_rank, owner_rank, bit_index);
  });
}

void FailureInjector::ArmCorruptionOnTrigger(std::string trigger, int holder_rank, int owner_rank,
                                             size_t bit_index, TimeNs delay) {
  ArmedEvent armed;
  armed.corruption = true;
  armed.holder_rank = holder_rank;
  armed.owner_rank = owner_rank;
  armed.bit_index = bit_index;
  armed.delay = delay;
  armed_[std::move(trigger)].push_back(std::move(armed));
}

void FailureInjector::InjectDeltaCorruptionAt(TimeNs when, int holder_rank, int owner_rank,
                                              size_t chain_index, size_t bit_index) {
  sim_.ScheduleAt(when, [this, holder_rank, owner_rank, chain_index, bit_index] {
    ApplyDeltaCorruption(holder_rank, owner_rank, chain_index, bit_index);
  });
}

void FailureInjector::ArmDeltaCorruptionOnTrigger(std::string trigger, int holder_rank,
                                                  int owner_rank, size_t chain_index,
                                                  size_t bit_index, TimeNs delay) {
  ArmedEvent armed;
  armed.delta_corruption = true;
  armed.holder_rank = holder_rank;
  armed.owner_rank = owner_rank;
  armed.chain_index = chain_index;
  armed.bit_index = bit_index;
  armed.delay = delay;
  armed_[std::move(trigger)].push_back(std::move(armed));
}

void FailureInjector::Fire(std::string_view trigger) {
  auto it = armed_.find(std::string(trigger));
  if (it == armed_.end() || it->second.empty()) {
    return;
  }
  std::vector<ArmedEvent> events = std::move(it->second);
  armed_.erase(it);
  if (trigger_fires_counter_ != nullptr) {
    trigger_fires_counter_->Increment();
  }
  for (ArmedEvent& armed : events) {
    if (armed.delta_corruption) {
      const int holder = armed.holder_rank;
      const int owner = armed.owner_rank;
      const size_t chain = armed.chain_index;
      const size_t bit = armed.bit_index;
      sim_.ScheduleAfter(armed.delay, [this, holder, owner, chain, bit] {
        ApplyDeltaCorruption(holder, owner, chain, bit);
      });
      continue;
    }
    if (armed.corruption) {
      const int holder = armed.holder_rank;
      const int owner = armed.owner_rank;
      const size_t bit = armed.bit_index;
      sim_.ScheduleAfter(armed.delay,
                         [this, holder, owner, bit] { ApplyCorruption(holder, owner, bit); });
      continue;
    }
    FailureEvent event;
    event.type = armed.type;
    event.ranks = std::move(armed.ranks);
    sim_.ScheduleAfter(armed.delay, [this, event = std::move(event)]() mutable {
      event.time = sim_.now();
      Apply(event);
    });
  }
}

void FailureInjector::ApplyCorruption(int holder_rank, int owner_rank, size_t bit_index) {
  if (!corruption_hook_) {
    GEMINI_LOG(kWarning) << "failure injector: corruption requested but no hook installed";
    return;
  }
  const Status status = corruption_hook_(holder_rank, owner_rank, bit_index);
  if (!status.ok()) {
    GEMINI_LOG(kWarning) << "failure injector: corruption of owner " << owner_rank
                         << "'s replica on rank " << holder_rank << " failed: " << status;
    return;
  }
  GEMINI_LOG(kInfo) << "failure injector: flipped bit " << bit_index << " of owner "
                    << owner_rank << "'s replica on rank " << holder_rank << " at "
                    << FormatDuration(sim_.now());
  if (corruptions_counter_ != nullptr) {
    corruptions_counter_->Increment();
  }
}

void FailureInjector::ApplyDeltaCorruption(int holder_rank, int owner_rank, size_t chain_index,
                                           size_t bit_index) {
  if (!delta_corruption_hook_) {
    GEMINI_LOG(kWarning) << "failure injector: delta corruption requested but no hook installed";
    return;
  }
  const Status status = delta_corruption_hook_(holder_rank, owner_rank, chain_index, bit_index);
  if (!status.ok()) {
    GEMINI_LOG(kWarning) << "failure injector: delta corruption of owner " << owner_rank
                         << "'s chain link " << chain_index << " on rank " << holder_rank
                         << " failed: " << status;
    return;
  }
  GEMINI_LOG(kInfo) << "failure injector: flipped bit " << bit_index << " of owner " << owner_rank
                    << "'s chain link " << chain_index << " on rank " << holder_rank << " at "
                    << FormatDuration(sim_.now());
  if (corruptions_counter_ != nullptr) {
    corruptions_counter_->Increment();
  }
}

void FailureInjector::Apply(const FailureEvent& event) {
  for (const int rank : event.ranks) {
    Machine& machine = cluster_.machine(rank);
    if (!machine.alive()) {
      continue;  // Already dead; nothing more to break.
    }
    machine.set_health(event.type == FailureType::kSoftware ? MachineHealth::kProcessDown
                                                            : MachineHealth::kDead);
    GEMINI_LOG(kInfo) << "failure injector: " << FailureTypeName(event.type) << " failure on "
                      << machine.DebugName() << " at " << FormatDuration(sim_.now());
  }
  ++injected_;
  if (failures_counter_ != nullptr) {
    failures_counter_->Increment();
  }
  if (observer_) {
    observer_(event);
  }
}

void FailureInjector::StartRandomArrivals(double rate_per_machine_day, double software_fraction,
                                          TimeNs until) {
  ScheduleNextRandom(rate_per_machine_day, software_fraction, until);
}

void FailureInjector::StartRandomArrivalsAt(TimeNs start, double rate_per_machine_day,
                                            double software_fraction, TimeNs until) {
  if (start <= sim_.now()) {
    ScheduleNextRandom(rate_per_machine_day, software_fraction, until);
    return;
  }
  sim_.ScheduleAt(start, [this, rate_per_machine_day, software_fraction, until] {
    ScheduleNextRandom(rate_per_machine_day, software_fraction, until);
  });
}

void FailureInjector::ScheduleNextRandom(double rate_per_machine_day, double software_fraction,
                                         TimeNs until) {
  const double cluster_rate_per_day = rate_per_machine_day * cluster_.size();
  if (cluster_rate_per_day <= 0) {
    return;
  }
  const double days_to_next = rng_.Exponential(cluster_rate_per_day);
  const TimeNs delay = static_cast<TimeNs>(days_to_next * 24.0 * static_cast<double>(kHour));
  const TimeNs when = sim_.now() + delay;
  if (when > until) {
    return;
  }
  sim_.ScheduleAt(when, [this, rate_per_machine_day, software_fraction, until] {
    const std::vector<int> alive = cluster_.AliveRanks();
    if (!alive.empty()) {
      const int victim =
          alive[static_cast<size_t>(rng_.NextU64Below(static_cast<uint64_t>(alive.size())))];
      FailureEvent event;
      event.time = sim_.now();
      event.type = rng_.Bernoulli(software_fraction) ? FailureType::kSoftware
                                                     : FailureType::kHardware;
      event.ranks = {victim};
      Apply(event);
    }
    ScheduleNextRandom(rate_per_machine_day, software_fraction, until);
  });
}

}  // namespace gemini
