// GEMINI worker agent (paper Section 3.2).
//
// One per training machine. Publishes the machine's health status to the
// distributed key-value store under a heartbeat lease: a hardware failure
// silences the keepalive, the lease expires, and the key disappears — which
// is exactly how the root agent detects dead machines. Software failures
// (training process crash, agent alive) are reported explicitly in the key's
// value. Worker agents also watch the root agent's leadership key; when it
// expires they campaign to promote one of themselves to root.
#ifndef SRC_AGENT_WORKER_AGENT_H_
#define SRC_AGENT_WORKER_AGENT_H_

#include <functional>
#include <memory>
#include <string>

#include "src/cluster/cluster.h"
#include "src/kvstore/kv_store.h"
#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace gemini {

class Counter;
class MetricsRegistry;
class RunTracer;

inline constexpr char kHealthKeyPrefix[] = "/gemini/health/";
inline constexpr char kRootKey[] = "/gemini/root";

inline constexpr char kStatusHealthy[] = "healthy";
inline constexpr char kStatusProcessDown[] = "process_down";

struct AgentConfig {
  // Health-key lease TTL and keepalive cadence. With the root scan period,
  // these give the ~15 s failure-detection latency of paper Figure 14.
  TimeNs health_lease_ttl = Seconds(10);
  TimeNs keepalive_interval = Seconds(3);
  TimeNs root_scan_interval = Seconds(5);
};

class WorkerAgent {
 public:
  WorkerAgent(Simulator& sim, Cluster& cluster, KvStoreCluster& kv, int rank, AgentConfig config);
  ~WorkerAgent();

  void Start();
  void Stop();

  int rank() const { return rank_; }
  bool started() const { return started_; }

  // Called when the local training process crashes (software failure): the
  // agent survives and flips the published status.
  void ReportProcessDown();
  // Called when the training process restarts after recovery.
  void ReportHealthy();

  // Invoked when this agent wins the root election (set by the system).
  void set_on_promoted_to_root(std::function<void()> callback) {
    on_promoted_ = std::move(callback);
  }

  // Optional sink for "agent.*" counters; may stay null. Counter handles are
  // resolved here, once, per the hot-path metric convention
  // (src/obs/metrics.h) — the keepalive counter fires every few simulated
  // seconds for the whole run.
  void set_metrics(MetricsRegistry* metrics);
  // Optional trace sink: publish failures/retries become "agent" track
  // instants (the flight recorder's pre-failure context); may stay null.
  void set_tracer(RunTracer* tracer) { tracer_ = tracer; }

 private:
  std::string health_key() const { return kHealthKeyPrefix + std::to_string(rank_); }
  bool machine_ok() const { return cluster_.machine(rank_).alive(); }

  void AcquireLeaseAndPublish();
  void PublishStatus(const std::string& status);
  void OnKeepAliveTick();
  void OnRootWatchTick();

  Simulator& sim_;
  Cluster& cluster_;
  KvStoreCluster& kv_;
  int rank_;
  AgentConfig config_;
  bool started_ = false;
  LeaseId lease_ = kNoLease;
  std::string last_status_ = kStatusHealthy;
  // Set when a health publish fails (KV leader change, quorum blip); the next
  // keepalive tick republishes so the root never acts on a stale status.
  bool publish_retry_pending_ = false;
  std::unique_ptr<RepeatingTimer> keepalive_timer_;
  std::unique_ptr<RepeatingTimer> root_watch_timer_;
  std::function<void()> on_promoted_;
  MetricsRegistry* metrics_ = nullptr;
  RunTracer* tracer_ = nullptr;
  // Hot-path metric handles (resolved once in set_metrics).
  Counter* lease_acquired_counter_ = nullptr;
  Counter* publish_failures_counter_ = nullptr;
  Counter* publish_retries_counter_ = nullptr;
  Counter* process_down_counter_ = nullptr;
  Counter* keepalives_counter_ = nullptr;
  Counter* root_campaigns_counter_ = nullptr;
};

}  // namespace gemini

#endif  // SRC_AGENT_WORKER_AGENT_H_
