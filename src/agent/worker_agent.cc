#include "src/agent/worker_agent.h"

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/run_tracer.h"

namespace gemini {

WorkerAgent::WorkerAgent(Simulator& sim, Cluster& cluster, KvStoreCluster& kv, int rank,
                         AgentConfig config)
    : sim_(sim), cluster_(cluster), kv_(kv), rank_(rank), config_(config) {
  keepalive_timer_ = std::make_unique<RepeatingTimer>(sim_, config_.keepalive_interval,
                                                      [this] { OnKeepAliveTick(); });
  root_watch_timer_ = std::make_unique<RepeatingTimer>(sim_, config_.root_scan_interval,
                                                       [this] { OnRootWatchTick(); });
}

WorkerAgent::~WorkerAgent() = default;

void WorkerAgent::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics != nullptr) {
    lease_acquired_counter_ = &metrics->counter("agent.lease_acquired");
    publish_failures_counter_ = &metrics->counter("agent.publish_failures");
    publish_retries_counter_ = &metrics->counter("agent.publish_retries");
    process_down_counter_ = &metrics->counter("agent.process_down_reports");
    keepalives_counter_ = &metrics->counter("agent.keepalives");
    root_campaigns_counter_ = &metrics->counter("agent.root_campaigns");
  } else {
    lease_acquired_counter_ = nullptr;
    publish_failures_counter_ = nullptr;
    publish_retries_counter_ = nullptr;
    process_down_counter_ = nullptr;
    keepalives_counter_ = nullptr;
    root_campaigns_counter_ = nullptr;
  }
}

void WorkerAgent::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  last_status_ = kStatusHealthy;
  AcquireLeaseAndPublish();
  keepalive_timer_->Start();
  root_watch_timer_->Start();
}

void WorkerAgent::Stop() {
  started_ = false;
  lease_ = kNoLease;
  keepalive_timer_->Stop();
  root_watch_timer_->Stop();
}

void WorkerAgent::AcquireLeaseAndPublish() {
  if (!machine_ok()) {
    return;
  }
  kv_.LeaseGrant(config_.health_lease_ttl, [this](StatusOr<LeaseId> lease) {
    if (!started_ || !machine_ok()) {
      return;
    }
    if (!lease.ok()) {
      // No KV leader yet (e.g. right after startup); retry on the next tick.
      return;
    }
    lease_ = *lease;
    if (lease_acquired_counter_ != nullptr) {
      lease_acquired_counter_->Increment();
    }
    PublishStatus(last_status_);
  });
}

void WorkerAgent::PublishStatus(const std::string& status) {
  if (!machine_ok() || lease_ == kNoLease) {
    return;
  }
  last_status_ = status;
  kv_.Put(health_key(), status, lease_, [this, status](Status put_status) {
    if (!put_status.ok()) {
      // A dropped publish must not go unnoticed: a process_down status that
      // never lands means the root agent never starts recovery. Count it and
      // retry on the next keepalive tick.
      publish_retry_pending_ = true;
      if (publish_failures_counter_ != nullptr) {
        publish_failures_counter_->Increment();
      }
      if (tracer_ != nullptr) {
        tracer_->Event("agent_publish_failed", "agent",
                       {TraceAttr::Int("rank", rank_), TraceAttr::Text("status", status)});
      }
      GEMINI_LOG(kWarning) << "worker " << rank_ << ": health publish failed (" << put_status
                           << "); will retry on next keepalive";
      return;
    }
    publish_retry_pending_ = false;
  });
}

void WorkerAgent::ReportProcessDown() {
  if (process_down_counter_ != nullptr) {
    process_down_counter_->Increment();
  }
  PublishStatus(kStatusProcessDown);
}

void WorkerAgent::ReportHealthy() { PublishStatus(kStatusHealthy); }

void WorkerAgent::OnKeepAliveTick() {
  // A dead machine stops keeping its lease alive; the health key expires and
  // the root agent notices the rank vanished.
  if (!machine_ok()) {
    return;
  }
  if (lease_ == kNoLease) {
    AcquireLeaseAndPublish();
    return;
  }
  if (keepalives_counter_ != nullptr) {
    keepalives_counter_->Increment();
  }
  kv_.LeaseKeepAlive(lease_, [this](Status status) {
    if (!status.ok() && started_ && machine_ok()) {
      // Lease may have expired during a KV leader change; reacquire.
      lease_ = kNoLease;
      return;
    }
    if (publish_retry_pending_ && started_ && machine_ok()) {
      if (publish_retries_counter_ != nullptr) {
        publish_retries_counter_->Increment();
      }
      if (tracer_ != nullptr) {
        tracer_->Event("agent_publish_retry", "agent", {TraceAttr::Int("rank", rank_)});
      }
      PublishStatus(last_status_);
    }
  });
}

void WorkerAgent::OnRootWatchTick() {
  if (!machine_ok() || lease_ == kNoLease) {
    return;
  }
  const StatusOr<KvEntry> root = kv_.Get(kRootKey);
  if (root.ok()) {
    return;  // Root alive.
  }
  if (root.status().code() != StatusCode::kNotFound) {
    return;  // KV unavailable; try next tick.
  }
  // Root key expired: campaign. The key is attached to our health lease so a
  // root that later dies is detected the same way.
  if (root_campaigns_counter_ != nullptr) {
    root_campaigns_counter_->Increment();
  }
  kv_.PutIfAbsent(kRootKey, std::to_string(rank_), lease_, [this](Status status) {
    if (!status.ok()) {
      return;
    }
    const StatusOr<KvEntry> winner = kv_.Get(kRootKey);
    if (winner.ok() && winner->value == std::to_string(rank_)) {
      GEMINI_LOG(kInfo) << "worker " << rank_ << " promoted to root agent";
      if (on_promoted_) {
        on_promoted_();
      }
    }
  });
}

}  // namespace gemini
