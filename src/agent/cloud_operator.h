// Cloud operator: machine replacement (the EC2 Auto Scaling Group stand-in).
//
// When the root agent reports a hardware failure, the operator provisions a
// healthy machine for the failed rank. Provisioning from the cloud pool
// takes a non-deterministic 4-7 minutes (the paper's measured ASG latency);
// a pre-allocated standby machine activates in seconds instead, and the
// operator replenishes the standby pool in the background (Section 6.2
// "Standby machines").
#ifndef SRC_AGENT_CLOUD_OPERATOR_H_
#define SRC_AGENT_CLOUD_OPERATOR_H_

#include <functional>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/sim/simulator.h"

namespace gemini {

class Counter;
class MetricsRegistry;

struct CloudOperatorConfig {
  TimeNs provision_delay_min = Minutes(4);
  TimeNs provision_delay_max = Minutes(7);
  int num_standby = 0;
  TimeNs standby_activation_delay = Seconds(10);
};

class CloudOperator {
 public:
  CloudOperator(Simulator& sim, Cluster& cluster, CloudOperatorConfig config, uint64_t seed);

  // Installs a fresh machine at `rank` (next incarnation) and invokes `done`
  // once it is ready. Uses a standby machine when available.
  void ReplaceMachine(int rank, std::function<void(Machine&)> done);

  int standby_available() const { return standby_available_; }
  int total_replacements() const { return total_replacements_; }

  // Expected replacement latency for analysis/benches.
  TimeNs MeanProvisionDelay() const {
    return (config_.provision_delay_min + config_.provision_delay_max) / 2;
  }

  // Optional sink for "cloud.*" counters; may stay null. Counter handles are
  // resolved here, once, per the hot-path metric convention
  // (src/obs/metrics.h).
  void set_metrics(MetricsRegistry* metrics);

 private:
  Simulator& sim_;
  Cluster& cluster_;
  CloudOperatorConfig config_;
  Rng rng_;
  int standby_available_;
  int total_replacements_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  // Metric handles (resolved once in set_metrics).
  Counter* replacements_counter_ = nullptr;
  Counter* standby_activations_counter_ = nullptr;
};

}  // namespace gemini

#endif  // SRC_AGENT_CLOUD_OPERATOR_H_
