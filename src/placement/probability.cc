#include "src/placement/probability.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace gemini {

double BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) {
    return 0.0;
  }
  k = std::min(k, n - k);
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i);
    result /= static_cast<double>(i);
  }
  return result;
}

int64_t ForEachCombination(int n, int k,
                           const std::function<bool(const std::vector<int>&)>& visit) {
  assert(k >= 0 && k <= n);
  std::vector<int> combo(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    combo[static_cast<size_t>(i)] = i;
  }
  int64_t visited = 0;
  if (k == 0) {
    return visit(combo) ? 1 : -1;
  }
  while (true) {
    ++visited;
    if (!visit(combo)) {
      return -1;
    }
    // Advance to the next combination in lexicographic order.
    int i = k - 1;
    while (i >= 0 && combo[static_cast<size_t>(i)] == n - k + i) {
      --i;
    }
    if (i < 0) {
      break;
    }
    ++combo[static_cast<size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      combo[static_cast<size_t>(j)] = combo[static_cast<size_t>(j - 1)] + 1;
    }
  }
  return visited;
}

double Corollary1LowerBound(int num_machines, int num_replicas, int num_failed) {
  assert(num_machines >= 1);
  assert(num_replicas >= 1 && num_replicas <= num_machines);
  assert(num_failed >= 0 && num_failed <= num_machines);
  if (num_failed < num_replicas) {
    return 1.0;
  }
  const double groups = static_cast<double>(num_machines) / static_cast<double>(num_replicas);
  const double bad = groups * BinomialCoefficient(num_machines - num_replicas,
                                                  num_failed - num_replicas);
  const double total = BinomialCoefficient(num_machines, num_failed);
  return std::max(0.0, 1.0 - bad / total);
}

StatusOr<double> ExactRecoveryProbability(const PlacementPlan& plan, int num_failed,
                                          int64_t max_combinations) {
  const int n = plan.num_machines;
  if (num_failed < 0 || num_failed > n) {
    return InvalidArgumentError("num_failed out of range");
  }
  const double total = BinomialCoefficient(n, num_failed);
  if (total > static_cast<double>(max_combinations)) {
    return ResourceExhaustedError("combination space too large for exact enumeration");
  }
  int64_t survivable = 0;
  std::vector<bool> failed(static_cast<size_t>(n), false);
  ForEachCombination(n, num_failed, [&](const std::vector<int>& combo) {
    for (const int machine : combo) {
      failed[static_cast<size_t>(machine)] = true;
    }
    if (plan.Recoverable(failed)) {
      ++survivable;
    }
    for (const int machine : combo) {
      failed[static_cast<size_t>(machine)] = false;
    }
    return true;
  });
  return static_cast<double>(survivable) / total;
}

double MonteCarloRecoveryProbability(const PlacementPlan& plan, int num_failed, int trials,
                                     Rng& rng) {
  assert(trials > 0);
  assert(num_failed >= 0 && num_failed <= plan.num_machines);
  int64_t survivable = 0;
  std::vector<bool> failed(static_cast<size_t>(plan.num_machines), false);
  for (int t = 0; t < trials; ++t) {
    const std::vector<int> sample = rng.SampleWithoutReplacement(plan.num_machines, num_failed);
    for (const int machine : sample) {
      failed[static_cast<size_t>(machine)] = true;
    }
    if (plan.Recoverable(failed)) {
      ++survivable;
    }
    for (const int machine : sample) {
      failed[static_cast<size_t>(machine)] = false;
    }
  }
  return static_cast<double>(survivable) / static_cast<double>(trials);
}

double RingAnalyticLowerBound(int num_machines, int num_replicas, int num_failed) {
  if (num_failed < num_replicas) {
    return 1.0;
  }
  const double bad = static_cast<double>(num_machines) *
                     BinomialCoefficient(num_machines - num_replicas,
                                         num_failed - num_replicas);
  const double total = BinomialCoefficient(num_machines, num_failed);
  return std::max(0.0, 1.0 - bad / total);
}

double MixedStrategyGapBound(int num_machines, int num_replicas) {
  return static_cast<double>(2 * num_replicas - 3) /
         BinomialCoefficient(num_machines, num_replicas);
}

}  // namespace gemini
