#include "src/placement/placement.h"

#include <algorithm>
#include <cassert>

namespace gemini {

std::string_view PlacementStrategyName(PlacementStrategy strategy) {
  switch (strategy) {
    case PlacementStrategy::kGroup:
      return "group";
    case PlacementStrategy::kRing:
      return "ring";
    case PlacementStrategy::kMixed:
      return "mixed";
  }
  return "unknown";
}

std::vector<int> PlacementPlan::RemoteDestinations(int machine) const {
  std::vector<int> out;
  for (const int holder : replica_sets.at(static_cast<size_t>(machine))) {
    if (holder != machine) {
      out.push_back(holder);
    }
  }
  return out;
}

std::vector<int> PlacementPlan::AliveRemoteHolders(int owner,
                                                   const std::vector<bool>& machine_alive) const {
  std::vector<int> out;
  for (const int holder : replica_sets.at(static_cast<size_t>(owner))) {
    if (holder != owner && machine_alive.at(static_cast<size_t>(holder))) {
      out.push_back(holder);
    }
  }
  return out;
}

bool PlacementPlan::Recoverable(const std::vector<bool>& machine_failed) const {
  assert(static_cast<int>(machine_failed.size()) == num_machines);
  for (const auto& holders : replica_sets) {
    bool any_alive = false;
    for (const int holder : holders) {
      if (!machine_failed[static_cast<size_t>(holder)]) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive) {
      return false;
    }
  }
  return true;
}

namespace {

Status ValidateArgs(int num_machines, int num_replicas) {
  if (num_machines < 1) {
    return InvalidArgumentError("placement requires at least one machine");
  }
  if (num_replicas < 1 || num_replicas > num_machines) {
    return InvalidArgumentError("replica count must be in [1, num_machines]");
  }
  return Status::Ok();
}

// Fills replica sets for a ring over `members`: each member replicates to
// its m-1 successors within the ring.
void ApplyRingSection(const std::vector<int>& members, int num_replicas, PlacementPlan& plan) {
  const int length = static_cast<int>(members.size());
  for (int j = 0; j < length; ++j) {
    auto& holders = plan.replica_sets[static_cast<size_t>(members[static_cast<size_t>(j)])];
    holders.clear();
    for (int offset = 0; offset < num_replicas; ++offset) {
      holders.push_back(members[static_cast<size_t>((j + offset) % length)]);
    }
  }
}

// Fills replica sets for a fully-connected group: everyone holds everyone.
void ApplyGroupSection(const std::vector<int>& members, PlacementPlan& plan) {
  for (const int machine : members) {
    auto& holders = plan.replica_sets[static_cast<size_t>(machine)];
    holders.clear();
    holders.push_back(machine);  // Local replica first.
    for (const int peer : members) {
      if (peer != machine) {
        holders.push_back(peer);
      }
    }
  }
}

}  // namespace

StatusOr<PlacementPlan> BuildGroupPlacement(int num_machines, int num_replicas) {
  GEMINI_RETURN_IF_ERROR(ValidateArgs(num_machines, num_replicas));
  if (num_machines % num_replicas != 0) {
    return InvalidArgumentError("group placement requires num_replicas to divide num_machines");
  }
  PlacementPlan plan;
  plan.num_machines = num_machines;
  plan.num_replicas = num_replicas;
  plan.strategy = PlacementStrategy::kGroup;
  plan.replica_sets.resize(static_cast<size_t>(num_machines));
  for (int start = 0; start < num_machines; start += num_replicas) {
    std::vector<int> group;
    for (int j = 0; j < num_replicas; ++j) {
      group.push_back(start + j);
    }
    ApplyGroupSection(group, plan);
    plan.groups.push_back(std::move(group));
  }
  return plan;
}

StatusOr<PlacementPlan> BuildRingPlacement(int num_machines, int num_replicas) {
  GEMINI_RETURN_IF_ERROR(ValidateArgs(num_machines, num_replicas));
  PlacementPlan plan;
  plan.num_machines = num_machines;
  plan.num_replicas = num_replicas;
  plan.strategy = PlacementStrategy::kRing;
  plan.replica_sets.resize(static_cast<size_t>(num_machines));
  std::vector<int> everyone;
  for (int i = 0; i < num_machines; ++i) {
    everyone.push_back(i);
  }
  ApplyRingSection(everyone, num_replicas, plan);
  plan.groups.push_back(std::move(everyone));
  return plan;
}

StatusOr<PlacementPlan> BuildMixedPlacement(int num_machines, int num_replicas) {
  GEMINI_RETURN_IF_ERROR(ValidateArgs(num_machines, num_replicas));
  if (num_machines % num_replicas == 0) {
    // Algorithm 1: divisible case degenerates to pure group placement.
    GEMINI_ASSIGN_OR_RETURN(PlacementPlan plan,
                            BuildGroupPlacement(num_machines, num_replicas));
    plan.strategy = PlacementStrategy::kMixed;
    return plan;
  }

  PlacementPlan plan;
  plan.num_machines = num_machines;
  plan.num_replicas = num_replicas;
  plan.strategy = PlacementStrategy::kMixed;
  plan.replica_sets.resize(static_cast<size_t>(num_machines));

  // First floor(N/m) - 1 groups use group placement; the remaining
  // N - m*(floor(N/m) - 1) machines form one ring (Algorithm 1 lines 12-17).
  const int full_groups = num_machines / num_replicas - 1;
  for (int g = 0; g < full_groups; ++g) {
    std::vector<int> group;
    for (int j = 0; j < num_replicas; ++j) {
      group.push_back(g * num_replicas + j);
    }
    ApplyGroupSection(group, plan);
    plan.groups.push_back(std::move(group));
  }
  std::vector<int> tail;
  for (int machine = full_groups * num_replicas; machine < num_machines; ++machine) {
    tail.push_back(machine);
  }
  ApplyRingSection(tail, num_replicas, plan);
  plan.groups.push_back(std::move(tail));
  return plan;
}

}  // namespace gemini
