// Checkpoint placement strategies (paper Section 4, Algorithm 1).
//
// Given N machines and m checkpoint replicas, a placement assigns each
// machine the set of machines storing its checkpoint (always including
// itself as the local replica). The paper proves the *group* strategy
// optimal when m | N, and the *mixed* strategy (groups + one trailing ring)
// near-optimal otherwise, with the probability gap bounded by
// (2m-3)/C(N,m).
#ifndef SRC_PLACEMENT_PLACEMENT_H_
#define SRC_PLACEMENT_PLACEMENT_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace gemini {

enum class PlacementStrategy {
  // Disjoint groups of m machines replicating to each other (requires m | N).
  kGroup,
  // Every machine replicates to its m-1 ring successors.
  kRing,
  // Algorithm 1: groups for the first m*(floor(N/m)-1) machines, ring over
  // the remainder. Equals kGroup when m | N.
  kMixed,
};

std::string_view PlacementStrategyName(PlacementStrategy strategy);

struct PlacementPlan {
  int num_machines = 0;
  int num_replicas = 0;
  PlacementStrategy strategy = PlacementStrategy::kMixed;
  // Machine groups as produced by Algorithm 1 (group placement sections are
  // disjoint m-sized groups; a trailing ring section is one larger group).
  std::vector<std::vector<int>> groups;
  // replica_sets[i] = the machines holding machine i's checkpoint, starting
  // with i itself (the local replica).
  std::vector<std::vector<int>> replica_sets;

  // Destinations machine i sends its checkpoint to (replica set minus self).
  std::vector<int> RemoteDestinations(int machine) const;

  // Machines other than `owner` holding `owner`'s checkpoint that are alive
  // according to the predicate.
  std::vector<int> AliveRemoteHolders(int owner,
                                      const std::vector<bool>& machine_alive) const;

  // True when every machine's checkpoint survives the failure of exactly the
  // machines marked failed (i.e. for each machine, at least one replica
  // holder is alive). This is the CPU-memory recoverability condition.
  bool Recoverable(const std::vector<bool>& machine_failed) const;
};

// Algorithm 1 (mixed strategy). Requires 1 <= m <= N.
StatusOr<PlacementPlan> BuildMixedPlacement(int num_machines, int num_replicas);

// Pure group placement; requires m | N.
StatusOr<PlacementPlan> BuildGroupPlacement(int num_machines, int num_replicas);

// Pure ring placement (the paper's baseline comparison, Fig. 3b / Fig. 9).
StatusOr<PlacementPlan> BuildRingPlacement(int num_machines, int num_replicas);

}  // namespace gemini

#endif  // SRC_PLACEMENT_PLACEMENT_H_
