// Recovery-probability analysis for checkpoint placements (paper Corollary 1
// and the Figure 9 study).
//
// Three estimators with different trust/cost profiles:
//  * Corollary1LowerBound — the paper's closed form (exact for m <= k < 2m
//    under group placement, a lower bound for k >= 2m);
//  * ExactRecoveryProbability — exhaustive enumeration of all C(N,k) failure
//    sets against an arbitrary plan (ground truth, small N*k only);
//  * MonteCarloRecoveryProbability — sampled estimate for large N.
#ifndef SRC_PLACEMENT_PROBABILITY_H_
#define SRC_PLACEMENT_PROBABILITY_H_

#include <cstdint>
#include <functional>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/placement/placement.h"

namespace gemini {

// C(n, k) as double (exact for the magnitudes used here).
double BinomialCoefficient(int n, int k);

// Invokes `visit` with every k-subset of {0..n-1}; the span passed to the
// callback is valid only during the call. Returns the number of subsets
// visited. Stops early (returning -1) if the callback returns false.
int64_t ForEachCombination(int n, int k, const std::function<bool(const std::vector<int>&)>& visit);

// Paper Corollary 1: probability that GEMINI (group placement, m | N)
// recovers k simultaneous machine failures from CPU memory.
//   k <  m : 1
//   k >= m : max(0, 1 - (N/m) * C(N-m, k-m) / C(N, k))
double Corollary1LowerBound(int num_machines, int num_replicas, int num_failed);

// Ground truth by enumeration: fraction of k-failure sets the plan survives.
// Fails with kResourceExhausted when C(N,k) exceeds `max_combinations`.
StatusOr<double> ExactRecoveryProbability(const PlacementPlan& plan, int num_failed,
                                          int64_t max_combinations = 20'000'000);

// Sampled estimate with `trials` uniformly random k-failure sets.
double MonteCarloRecoveryProbability(const PlacementPlan& plan, int num_failed, int trials,
                                     Rng& rng);

// Analytic estimate of the ring strategy's recovery probability used by the
// paper's Figure 9 comparison: 1 - N * C(N-m, k-m) / C(N, k). Counts one
// fatal set per machine (its m consecutive successors), over-counting sets
// that defeat several machines at once, so it lower-bounds the exact ring
// probability.
double RingAnalyticLowerBound(int num_machines, int num_replicas, int num_failed);

// Theorem 1's bound on the optimality gap of the mixed strategy when m does
// not divide N: (2m - 3) / C(N, m).
double MixedStrategyGapBound(int num_machines, int num_replicas);

}  // namespace gemini

#endif  // SRC_PLACEMENT_PROBABILITY_H_
